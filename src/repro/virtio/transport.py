"""Transport-agnostic driver/device contract.

VirtIO 1.2 defines three transports (PCI, MMIO, channel I/O) over one
device model: the virtqueues, the feature handshake, and the device
config space are transport-independent; only *how* the driver reaches
them differs.  This module pins that seam down as a
:class:`typing.Protocol` so the net driver (and anything above it) can
run unchanged over either bus binding:

* :class:`repro.drivers.virtio_pci.VirtioPciTransport` -- the paper's
  path: capability discovery, per-structure BAR windows, MSI-X with a
  vector per queue.
* :class:`repro.drivers.virtio_mmio.VirtioMmioTransport` -- the 4.2
  register block at a fixed BAR offset, one shared interrupt with an
  ``InterruptStatus``/``InterruptACK`` pair (the binding guests use for
  SoC-attached FPGAs, cf. Virtio-FPGA).

The interrupt-binding methods exist because the two transports route
completions differently: PCI binds a *host vector per queue* (the
handler is dispatched directly), while MMIO multiplexes every queue and
the config-change source onto *one* line and demultiplexes by reading
``InterruptStatus``.  The driver only ever says "run this handler when
queue N completes"; the transport decides what that costs.
"""

from __future__ import annotations

from typing import Any, Generator, Protocol, runtime_checkable

from repro.virtio.features import FeatureSet
from repro.virtio.virtqueue import DriverVirtqueue

#: Generator protocol used throughout the simulated kernel.
SimGen = Generator[Any, Any, None]


@runtime_checkable
class Transport(Protocol):
    """What the device-class drivers require of a bus binding."""

    #: Features the device offered (valid after :meth:`initialize`).
    device_features: FeatureSet
    #: Features both sides agreed on (valid after :meth:`initialize`).
    accepted_features: FeatureSet
    #: Live virtqueues, indexed by queue number.
    virtqueues: list

    def discover(self) -> SimGen:
        """Locate the device's VirtIO structures on the bus (capability
        walk for PCI, magic/version probe for MMIO); raises
        ``VirtioProbeError`` when the function is not usable."""
        ...

    def initialize(self, driver_supported: FeatureSet) -> SimGen:
        """Drive the 3.1.1 handshake: reset, ACKNOWLEDGE/DRIVER, feature
        negotiation, FEATURES_OK, queue setup, DRIVER_OK."""
        ...

    def reset_runtime_state(self) -> None:
        """Forget per-boot queue state ahead of re-initialization."""
        ...

    def device_config_read(self, offset: int, length: int) -> Generator[Any, Any, bytes]:
        """Read *length* bytes of device-specific config at *offset*."""
        ...

    def read_device_status(self) -> Generator[Any, Any, int]:
        """Read the device status register (NEEDS_RESET polling)."""
        ...

    def isr_read(self) -> Generator[Any, Any, int]:
        """Read (and acknowledge) the interrupt status byte."""
        ...

    def notify(self, queue_index: int) -> SimGen:
        """Kick queue *queue_index*: the single runtime doorbell."""
        ...

    def queue(self, index: int) -> DriverVirtqueue:
        """The driver-side virtqueue for queue *index*."""
        ...

    def bind_queue_interrupt(self, index: int, handler: Any) -> None:
        """Run *handler* (a generator factory) when queue *index*'s
        completion interrupt fires."""
        ...

    def unbind_queue_interrupt(self, index: int) -> None:
        """Drop queue *index*'s completion binding (device reset)."""
        ...

    def bind_config_interrupt(self, handler: Any) -> None:
        """Run *handler* when the device signals a config change."""
        ...
