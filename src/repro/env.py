"""One validated reader for every ``REPRO_*`` environment knob.

The knobs accumulated across subsystems (packet-count override, event
scheduler backend, RNG sampling path, buffer-pool debug mode, guest
mode default), each with its own parsing and its own failure behavior
-- a typo in one silently fell back to the default while a typo in
another raised.  This module is the single source of truth: every knob
is declared here with its accepted values, every reader validates, and
an unknown value always raises :class:`EnvError` naming the variable,
the offending value, and what would have been accepted.

The reference table lives in ``docs/architecture.md`` ("Environment
knobs"); keep the two in sync.

Knobs
-----

``REPRO_PACKETS``
    Positive integer: packets per payload size / load point, overriding
    artifact defaults (the paper used 50000).
``REPRO_SIM_SCHEDULER``
    ``calendar`` (default) or ``heap``: the event-queue backend.  Both
    pop in the same total order, so results never change.
``REPRO_SIM_SCALAR_RNG``
    Flag: force the legacy per-draw scalar sampling path instead of
    block sampling (same draw sequence, slower; a determinism
    cross-check).
``REPRO_BUFPOOL_DEBUG``
    Flag: enable buffer-pool ownership poisoning and double-free
    checks.
``REPRO_GUEST_MODE``
    ``bare``, ``trapped``, or ``vhost``: default guest mode set for the
    ``guestsweep`` artifact when ``--modes`` is not given (unset: all
    three modes are swept).
``REPRO_CACHE``
    Flag: consult and populate the content-addressed cell result cache
    (the CLI's ``--cache``/``--no-cache`` flags override it).
``REPRO_CACHE_DIR``
    Directory path for the result cache (default ``.repro-cache``; the
    CLI's ``--cache-dir`` overrides it).  A path that exists but is
    not a directory is an error.
``REPRO_SNAPSHOT_BOOT``
    ``1`` (default) or ``0``: reuse pristine boot snapshots via
    fork/copy-on-write stamping when a cell's (spec, seed, profile)
    repeats in a process.  ``0`` boots every cell cold.

Flags accept ``1`` (on) and ``0`` / unset / empty (off); anything else
is an error rather than a guess.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple


class EnvError(ValueError):
    """An environment knob holds a value outside its accepted set."""


#: knob name -> human-readable accepted-values description (the
#: architecture doc's table is generated from the docstring above; this
#: map is what :func:`check_environment` sweeps).
KNOWN_KNOBS = {
    "REPRO_PACKETS": "a positive integer",
    "REPRO_SIM_SCHEDULER": "'calendar' or 'heap'",
    "REPRO_SIM_SCALAR_RNG": "'1' or '0'",
    "REPRO_BUFPOOL_DEBUG": "'1' or '0'",
    "REPRO_GUEST_MODE": "'bare', 'trapped', or 'vhost'",
    "REPRO_CACHE": "'1' or '0'",
    "REPRO_CACHE_DIR": "a directory path (created if missing)",
    "REPRO_SNAPSHOT_BOOT": "'1' (default) or '0'",
}


def _raw(name: str) -> str:
    return os.environ.get(name, "")


def _flag(name: str) -> bool:
    value = _raw(name)
    if value in ("", "0"):
        return False
    if value == "1":
        return True
    raise EnvError(
        f"{name} must be {KNOWN_KNOBS[name]}, got {value!r}"
    )


def _choice(name: str, allowed: Tuple[str, ...]) -> Optional[str]:
    value = _raw(name)
    if not value:
        return None
    if value not in allowed:
        raise EnvError(
            f"{name} must be {KNOWN_KNOBS[name]}, got {value!r}"
        )
    return value


def packets(fallback: Optional[int] = None) -> Optional[int]:
    """``REPRO_PACKETS`` as a positive int, or *fallback* when unset."""
    value = _raw("REPRO_PACKETS")
    if not value:
        return fallback
    try:
        count = int(value)
    except ValueError:
        raise EnvError(
            f"REPRO_PACKETS must be an integer, got {value!r}"
        ) from None
    if count <= 0:
        raise EnvError(f"REPRO_PACKETS must be positive, got {count}")
    return count


def scheduler() -> str:
    """``REPRO_SIM_SCHEDULER``, defaulting to ``calendar``."""
    return _choice("REPRO_SIM_SCHEDULER", ("calendar", "heap")) or "calendar"


def scalar_rng() -> bool:
    """``REPRO_SIM_SCALAR_RNG``: force per-draw scalar sampling."""
    return _flag("REPRO_SIM_SCALAR_RNG")


def bufpool_debug() -> bool:
    """``REPRO_BUFPOOL_DEBUG``: buffer-pool ownership checking."""
    return _flag("REPRO_BUFPOOL_DEBUG")


def guest_mode() -> Optional[str]:
    """``REPRO_GUEST_MODE``: default guestsweep mode, or None (all)."""
    return _choice("REPRO_GUEST_MODE", ("bare", "trapped", "vhost"))


def result_cache() -> bool:
    """``REPRO_CACHE``: enable the content-addressed result cache."""
    return _flag("REPRO_CACHE")


def cache_dir() -> Optional[str]:
    """``REPRO_CACHE_DIR``: result-cache directory, or None (default)."""
    value = _raw("REPRO_CACHE_DIR")
    if not value:
        return None
    if os.path.exists(value) and not os.path.isdir(value):
        raise EnvError(
            f"REPRO_CACHE_DIR must be {KNOWN_KNOBS['REPRO_CACHE_DIR']}, "
            f"got {value!r} which exists and is not a directory"
        )
    return value


def snapshot_boot() -> bool:
    """``REPRO_SNAPSHOT_BOOT``: boot-snapshot reuse (default on)."""
    value = _raw("REPRO_SNAPSHOT_BOOT")
    if value in ("", "1"):
        return True
    if value == "0":
        return False
    raise EnvError(
        f"REPRO_SNAPSHOT_BOOT must be {KNOWN_KNOBS['REPRO_SNAPSHOT_BOOT']}, "
        f"got {value!r}"
    )


def check_environment() -> None:
    """Validate every set knob at once (CLI startup hook): one clear
    error up front instead of a late failure deep inside a worker."""
    packets()
    scheduler()
    scalar_rng()
    bufpool_debug()
    guest_mode()
    result_cache()
    cache_dir()
    snapshot_boot()
