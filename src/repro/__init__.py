"""virtio-fpga-repro: reproduction of *Performance Evaluation of VirtIO
Device Drivers for Host-FPGA PCIe Communication* (IPDPSW 2024).

The package builds a deterministic transaction-level simulation of the
complete host-FPGA PCIe stack described in the paper:

``repro.sim``
    Discrete-event simulation kernel (picosecond time, generator
    processes, seeded random streams).
``repro.mem``
    Host physical memory, FPGA BRAM/DRAM, MMIO regions, struct codecs.
``repro.pcie``
    Transaction-level PCIe: TLPs, link timing, config space, root complex.
``repro.fpga``
    FPGA-side substrate: clocking, the XDMA DMA/Bridge IP model,
    hardware performance counters, user logic.
``repro.virtio``
    VirtIO 1.2 split virtqueues, feature negotiation, the virtio-pci
    transport structures, and the FPGA-side VirtIO controller (the
    paper's core contribution) with net/console/block personalities.
``repro.host``
    Host OS model: syscalls, interrupts, scheduler noise, sockets and a
    full UDP/IPv4/Ethernet/ARP network stack.
``repro.drivers``
    In-kernel driver models: the XDMA character-device reference driver
    and the virtio-pci/net/console/blk front-end drivers.
``repro.core``
    Experiment layer reproducing Fig. 3-5 and Table I plus ablations.
``repro.stats``
    Vectorized latency statistics (percentiles, summaries, histograms).

Quickstart::

    from repro.core import build_virtio_testbed, run_latency_sweep
    tb = build_virtio_testbed(seed=7)
    result = run_latency_sweep(tb, payload_sizes=[64, 256], packets=2000)
    print(result.summary_table())
"""

from repro._version import __version__

__all__ = ["__version__"]
