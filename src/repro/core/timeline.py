"""Round-trip timelines: annotated event traces of one measured packet.

The paper explains its results by *narrating* what each driver does per
transfer (Section IV-A). This module turns a traced simulation of one
round trip into that narration, with timestamps — useful both for
debugging the models and for teaching what the latency is made of::

    from repro.core.timeline import capture_virtio_timeline
    print(capture_virtio_timeline(seed=7).render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.calibration import FPGA_IP, PAPER_PROFILE, TEST_DST_PORT, CalibrationProfile
from repro.core.testbed import build_virtio_testbed, build_xdma_testbed
from repro.host.chardev import sys_read, sys_write
from repro.sim.time import to_us
from repro.sim.trace import TraceRecord, Tracer

#: Trace kinds worth narrating, with human phrasing.
_NARRATION = {
    "udp-tx": "host stack: UDP datagram built and routed",
    "kick": "device: doorbell received, queue engine starts",
    "kick-ignored": "device: doorbell noted (no prefetch)",
    "host-read": "device: DMA read of host memory",
    "host-write": "device: DMA write to host memory",
    "chain-prefetched": "device: RX buffer chain banked on-chip",
    "echo": "user logic: response frame generated",
    "queue-irq": "device: MSI-X interrupt for queue",
    "irq-suppressed": "device: completion without interrupt (suppressed)",
    "msi": "host: MSI dispatched to handler",
    "udp-rx": "host stack: datagram demuxed to socket",
    "preemption": "host: software stalled by preemption",
    "sgdma-start": "engine: SGDMA run started (descriptor pointer armed)",
    "desc-executed": "engine: descriptor executed (data moved)",
    "sgdma-done": "engine: SGDMA run complete",
    "channel-irq": "engine: channel interrupt raised",
    "tlp-tx": None,  # too chatty for the narration view
    "tlp-rx": None,
    "cfg-read": None,
    "cfg-write": None,
    "mem-read": None,
    "mem-write": None,
    "perf-interval": None,
}


@dataclass
class Timeline:
    """A captured, narratable round trip."""

    driver: str
    payload: int
    total_us: float
    records: List[TraceRecord] = field(default_factory=list)

    def events(self) -> List[TraceRecord]:
        """Records with a narration entry (non-None)."""
        out = []
        for record in self.records:
            if _NARRATION.get(record.kind, "") is not None:
                out.append(record)
        return out

    def render(self, include_tlps: bool = False) -> str:
        """Human-readable narrated timeline."""
        lines = [
            f"{self.driver} round trip, {self.payload} B payload, "
            f"{self.total_us:.1f} us total"
        ]
        start = self.records[0].time if self.records else 0
        for record in self.records:
            narration = _NARRATION.get(record.kind, "")
            if narration is None and not include_tlps:
                continue
            label = narration or record.kind
            detail = " ".join(f"{k}={v}" for k, v in record.detail.items())
            lines.append(
                f"  +{to_us(record.time - start):8.2f} us  [{record.source}] {label}"
                + (f"  ({detail})" if detail else "")
            )
        return "\n".join(lines)

    def count(self, kind: str) -> int:
        return sum(1 for r in self.records if r.kind == kind)


def capture_virtio_timeline(
    seed: int = 0,
    payload_size: int = 64,
    profile: CalibrationProfile = PAPER_PROFILE,
) -> Timeline:
    """Boot a traced VirtIO testbed and capture one echo round trip."""
    tracer = Tracer(enabled=True)
    testbed = build_virtio_testbed(seed=seed, profile=profile, tracer=tracer)
    tracer.clear()
    payload = bytes(payload_size)
    marks = {}

    def app():
        marks["t0"] = testbed.sim.now
        yield from testbed.socket.sendto(payload, FPGA_IP, TEST_DST_PORT)
        yield from testbed.socket.recvfrom()
        marks["t1"] = testbed.sim.now

    process = testbed.sim.spawn(app())
    testbed.sim.run_until_triggered(process)
    return Timeline(
        driver="VirtIO",
        payload=payload_size,
        total_us=to_us(marks["t1"] - marks["t0"]),
        records=[r for r in tracer.records if marks["t0"] <= r.time <= marks["t1"]],
    )


def capture_xdma_timeline(
    seed: int = 0,
    payload_size: int = 64,
    profile: CalibrationProfile = PAPER_PROFILE,
) -> Timeline:
    """Boot a traced XDMA testbed and capture one write+read round trip."""
    from repro.core.calibration import xdma_transfer_size

    tracer = Tracer(enabled=True)
    testbed = build_xdma_testbed(seed=seed, profile=profile, tracer=tracer)
    tracer.clear()
    transfer = xdma_transfer_size(payload_size)
    payload = bytes(transfer)
    marks = {}

    def app():
        marks["t0"] = testbed.sim.now
        yield from sys_write(testbed.kernel, testbed.driver, payload)
        yield from sys_read(testbed.kernel, testbed.driver, transfer)
        marks["t1"] = testbed.sim.now

    process = testbed.sim.spawn(app())
    testbed.sim.run_until_triggered(process)
    return Timeline(
        driver="XDMA",
        payload=payload_size,
        total_us=to_us(marks["t1"] - marks["t0"]),
        records=[r for r in tracer.records if marks["t0"] <= r.time <= marks["t1"]],
    )
