"""Pipelined-load experiment: an extension beyond the paper.

The paper measures one-in-flight round-trip latency. A natural question
it leaves open (and that VirtIO's design should win decisively) is
behaviour under *pipelined* load: with N requests in flight, VirtIO
batches ring processing — one doorbell can expose several buffers, one
interrupt + NAPI poll harvests several completions — while the XDMA
character-device flow serializes entirely (each write()/read() owns the
engine and takes its own interrupt).

:func:`run_virtio_pipelined` drives the echo testbed with a configurable
window of outstanding packets and reports per-packet latency plus
achieved packet rate; :func:`run_xdma_pipelined` issues back-to-back
write/read pairs from N "threads" serialized on the single channel
pair.  The ``benchmarks/test_extension_pipelining.py`` bench asserts
the expected shape: VirtIO throughput scales with the window while its
interrupt count *per packet* drops; XDMA's throughput saturates at the
one-transfer pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.core.calibration import FPGA_IP, TEST_DST_PORT, xdma_transfer_size
from repro.core.testbed import VirtioTestbed, XdmaTestbed
from repro.host.chardev import sys_read, sys_write
from repro.sim.time import NS, to_us


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of one pipelined run."""

    driver: str
    window: int
    packets: int
    duration_us: float
    irqs: int

    @property
    def packets_per_second(self) -> float:
        return self.packets / (self.duration_us * 1e-6)

    @property
    def irqs_per_packet(self) -> float:
        return self.irqs / self.packets

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.driver} window={self.window}: "
            f"{self.packets_per_second / 1e3:.1f} kpps, "
            f"{self.irqs_per_packet:.2f} irq/pkt"
        )


def run_virtio_pipelined(
    testbed: VirtioTestbed, window: int, packets: int, payload_size: int = 64
) -> ThroughputResult:
    """Echo *packets* datagrams keeping *window* of them in flight."""
    if window <= 0 or packets < window:
        raise ValueError(f"need 0 < window <= packets, got {window}/{packets}")
    socket = testbed.socket
    kernel = testbed.kernel
    irqs_before = kernel.irqc.delivered
    state = {"sent": 0, "received": 0}
    marks = {}

    def sender() -> Generator[Any, Any, None]:
        while state["sent"] < packets:
            # Respect the window: wait until a slot frees up.
            while state["sent"] - state["received"] >= window:
                yield 200 * NS
            payload = bytes((state["sent"] + i) & 0xFF for i in range(payload_size))
            yield from socket.sendto(payload, FPGA_IP, TEST_DST_PORT)
            state["sent"] += 1

    def receiver() -> Generator[Any, Any, None]:
        marks["t0"] = testbed.sim.now
        while state["received"] < packets:
            yield from socket.recvfrom()
            state["received"] += 1
        marks["t1"] = testbed.sim.now

    testbed.sim.spawn(sender())
    process = testbed.sim.spawn(receiver())
    testbed.sim.run_until_triggered(process)
    testbed.sim.run()
    return ThroughputResult(
        driver="virtio",
        window=window,
        packets=packets,
        duration_us=to_us(marks["t1"] - marks["t0"]),
        irqs=kernel.irqc.delivered - irqs_before,
    )


def run_xdma_pipelined(
    testbed: XdmaTestbed, window: int, packets: int, payload_size: int = 64
) -> ThroughputResult:
    """*window* concurrent workers each doing write()+read() loops.

    The single H2C/C2H channel pair serializes the engine work, and
    each transfer still pays its own interrupt+wakeup — the character
    device has no batching lever to pull.
    """
    if window <= 0 or packets < window:
        raise ValueError(f"need 0 < window <= packets, got {window}/{packets}")
    kernel = testbed.kernel
    transfer = xdma_transfer_size(payload_size)
    irqs_before = kernel.irqc.delivered
    state = {"issued": 0, "done": 0}
    marks = {"t0": testbed.sim.now}

    def worker() -> Generator[Any, Any, None]:
        while True:
            if state["issued"] >= packets:
                return
            state["issued"] += 1
            payload = bytes(transfer)
            yield from sys_write(kernel, testbed.driver, payload)
            yield from sys_read(kernel, testbed.driver, transfer)
            state["done"] += 1
            if state["done"] == packets:
                marks["t1"] = testbed.sim.now

    processes = [testbed.sim.spawn(worker()) for _ in range(window)]
    for process in processes:
        testbed.sim.run_until_triggered(process)
    testbed.sim.run()
    return ThroughputResult(
        driver="xdma",
        window=window,
        packets=packets,
        duration_us=to_us(marks["t1"] - marks["t0"]),
        irqs=kernel.irqc.delivered - irqs_before,
    )
