"""Reproduction entry points: one function per paper artifact.

Each function builds the testbed(s), runs the sweep, and returns both
the raw results and a rendered text artifact.  The benchmark harness
and the CLI are thin wrappers over these.

Packet counts default to a CI-friendly value; pass
``packets=PAPER_PACKETS_PER_SIZE`` (50 000) for full-fidelity runs.
The ``REPRO_PACKETS`` environment variable overrides the default.

Every entry point takes ``jobs``: ``None`` (default) runs the original
serial path -- the bit-exact reference -- while any integer routes the
run through :mod:`repro.exec`, which decomposes it into independent
cells and fans them out over a process pool (``jobs=1`` runs the same
cells in-process; output is identical for any worker count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from repro.core.calibration import (
    PAPER_PAYLOAD_SIZES,
    PAPER_PROFILE,
    CalibrationProfile,
)
from repro.core.latency import run_latency_sweep
from repro.core.results import (
    ComparisonResult,
    SweepResult,
    breakdown_rows,
    render_breakdown,
)
from repro.core.testbed import build_virtio_testbed, build_xdma_testbed


def default_packets(fallback: int = 2000) -> int:
    """Packets per payload size (env-overridable via ``REPRO_PACKETS``,
    validated by :mod:`repro.env`)."""
    from repro import env

    return env.packets(fallback)


def run_virtio_sweep(
    payload_sizes: Sequence[int] = PAPER_PAYLOAD_SIZES,
    packets: Optional[int] = None,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    jobs: Optional[int] = None,
) -> SweepResult:
    """The VirtIO side of the evaluation."""
    if jobs is not None:
        from repro.exec import execute_sweep

        sweep, _ = execute_sweep(
            "virtio", payload_sizes, packets or default_packets(), seed, profile, jobs
        )
        return sweep
    testbed = build_virtio_testbed(seed=seed, profile=profile)
    return run_latency_sweep(testbed, payload_sizes, packets or default_packets())


def run_xdma_sweep(
    payload_sizes: Sequence[int] = PAPER_PAYLOAD_SIZES,
    packets: Optional[int] = None,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    jobs: Optional[int] = None,
) -> SweepResult:
    """The XDMA side of the evaluation."""
    if jobs is not None:
        from repro.exec import execute_sweep

        sweep, _ = execute_sweep(
            "xdma", payload_sizes, packets or default_packets(), seed, profile, jobs
        )
        return sweep
    testbed = build_xdma_testbed(seed=seed, profile=profile)
    return run_latency_sweep(testbed, payload_sizes, packets or default_packets())


def run_comparison(
    payload_sizes: Sequence[int] = PAPER_PAYLOAD_SIZES,
    packets: Optional[int] = None,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    jobs: Optional[int] = None,
) -> ComparisonResult:
    """Both sweeps with matched parameters.

    With ``jobs`` set, both drivers' cells share one fan-out so the
    pool is loaded with all driver x payload cells at once.
    """
    if jobs is not None:
        from repro.exec import execute_comparison

        comparison, _ = execute_comparison(
            payload_sizes, packets or default_packets(), seed, profile, jobs
        )
        return comparison
    return ComparisonResult(
        virtio=run_virtio_sweep(payload_sizes, packets, seed, profile),
        xdma=run_xdma_sweep(payload_sizes, packets, seed, profile),
    )


# -- Figure 3: round-trip latency distributions ------------------------------------


def figure3(
    payload_sizes: Sequence[int] = PAPER_PAYLOAD_SIZES,
    packets: Optional[int] = None,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    jobs: Optional[int] = None,
) -> Tuple[ComparisonResult, str]:
    """Fig. 3: latency distributions for both drivers, all payloads."""
    comparison = run_comparison(payload_sizes, packets, seed, profile, jobs)
    blocks = ["Figure 3: round-trip latency distributions (us)"]
    for payload in comparison.payload_sizes():
        for name, sweep in (("VirtIO", comparison.virtio), ("XDMA", comparison.xdma)):
            result = sweep[payload]
            summary = result.rtt_summary()
            blocks.append(
                f"\n-- {name}, payload {payload} B "
                f"(mean {summary.mean_us:.1f}, sd {summary.std_us:.1f}) --"
            )
            blocks.append(result.histogram(bins=30).render(width=40))
    return comparison, "\n".join(blocks)


# -- Figures 4 and 5: latency breakdowns --------------------------------------------


def figure4(
    payload_sizes: Sequence[int] = PAPER_PAYLOAD_SIZES,
    packets: Optional[int] = None,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    jobs: Optional[int] = None,
) -> Tuple[SweepResult, str]:
    """Fig. 4: VirtIO hardware/software breakdown."""
    sweep = run_virtio_sweep(payload_sizes, packets, seed, profile, jobs)
    return sweep, render_breakdown(
        sweep, "Figure 4: VirtIO data-movement latency breakdown"
    )


def figure5(
    payload_sizes: Sequence[int] = PAPER_PAYLOAD_SIZES,
    packets: Optional[int] = None,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    jobs: Optional[int] = None,
) -> Tuple[SweepResult, str]:
    """Fig. 5: XDMA hardware/software breakdown."""
    sweep = run_xdma_sweep(payload_sizes, packets, seed, profile, jobs)
    return sweep, render_breakdown(
        sweep, "Figure 5: XDMA data-movement latency breakdown"
    )


# -- Table I: tail latencies ------------------------------------------------------------


def table1(
    payload_sizes: Sequence[int] = PAPER_PAYLOAD_SIZES,
    packets: Optional[int] = None,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    jobs: Optional[int] = None,
) -> Tuple[ComparisonResult, str]:
    """Table I: 95/99/99.9% tail latencies for both drivers."""
    comparison = run_comparison(payload_sizes, packets, seed, profile, jobs)
    return comparison, "Table I: tail latencies\n" + comparison.table1()


# -- Load sweep (workload-engine extension, beyond the paper) ---------------------------


def run_load_sweep(
    drivers: Sequence[str] = ("virtio", "xdma"),
    packets: Optional[int] = None,
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    rates: Optional[Sequence[float]] = None,
    outstanding: Optional[Sequence[int]] = None,
    arrival: str = "poisson",
    payload_sizes: Sequence[int] = (64,),
    jobs: Optional[int] = None,
) -> Tuple[dict, str]:
    """Offered-load sweep on both driver stacks (``loadsweep`` CLI).

    Open-loop by default: each driver is swept across offered-load
    points (auto-placed at multiples of its measured ping-pong rate, or
    at explicit ``rates``), reporting throughput-vs-load and
    p50/p95/p99-vs-load tables plus the saturation knee.  Passing
    ``outstanding`` switches to a closed-loop sweep over those
    outstanding-request counts instead.

    Returns ``(results, text)`` where ``results`` maps driver name to a
    :class:`repro.workload.sweep.LoadSweepResult` (or
    :class:`~repro.workload.sweep.ClosedSweepResult`).
    """
    from repro.workload.sizes import make_sizes
    from repro.workload.sweep import run_driver_closed_sweep, run_driver_load_sweep

    count = packets or default_packets(400)
    if jobs is not None:
        from repro.exec import execute_load_sweep

        results, _ = execute_load_sweep(
            drivers=drivers, packets=count, seed=seed, profile=profile,
            rates=rates, outstanding=outstanding, arrival=arrival,
            payload_sizes=payload_sizes, jobs=jobs,
        )
        blocks = [results[driver].render() for driver in drivers]
    else:
        sizes = make_sizes(list(payload_sizes))
        results = {}
        blocks = []
        for driver in drivers:
            if outstanding:
                result = run_driver_closed_sweep(
                    driver, outstanding=outstanding, seed=seed, packets=count,
                    sizes=sizes, profile=profile,
                )
            else:
                result = run_driver_load_sweep(
                    driver, seed=seed, packets=count, rates=rates, arrival=arrival,
                    sizes=sizes, profile=profile,
                )
            results[driver] = result
            blocks.append(result.render())
    title = (
        "Load sweep (closed loop)" if outstanding
        else "Load sweep (open loop)"
    )
    return results, title + "\n\n" + "\n\n".join(blocks)


# -- Section V claims -----------------------------------------------------------------------


@dataclass
class ClaimCheck:
    """One verifiable claim from the paper's evaluation section."""

    claim: str
    holds: bool
    evidence: str


def verify_paper_claims(comparison: ComparisonResult) -> list[ClaimCheck]:
    """Check the paper's qualitative claims against a comparison run.

    These are the statements the reproduction is accountable for --
    who wins, variance ordering, breakdown structure, tail convergence
    -- rather than absolute microsecond values.
    """
    checks: list[ClaimCheck] = []
    payloads = comparison.payload_sizes()

    # Claim 1: VirtIO comparable or better at p95/p99 (Section V,
    # Table I: "VirtIO shows lower tail latencies at 95 and 99
    # percentiles").
    p95_ok, p99_ok, evid95, evid99 = True, True, [], []
    for payload in payloads:
        v = comparison.virtio[payload].tail_latencies_us()
        x = comparison.xdma[payload].tail_latencies_us()
        p95_ok &= v[95.0] <= x[95.0]
        p99_ok &= v[99.0] <= x[99.0]
        evid95.append(f"{payload}B: {v[95.0]:.1f} vs {x[95.0]:.1f}")
        evid99.append(f"{payload}B: {v[99.0]:.1f} vs {x[99.0]:.1f}")
    checks.append(
        ClaimCheck("VirtIO p95 <= XDMA p95 at every payload", p95_ok, "; ".join(evid95))
    )
    checks.append(
        ClaimCheck("VirtIO p99 <= XDMA p99 at every payload", p99_ok, "; ".join(evid99))
    )

    # Claim 2: VirtIO has lower variance ("the VirtIO results show much
    # lower variance").  Measured as the p90-p10 spread of the
    # distribution: that is what Fig. 3's distributions show, and unlike
    # the sample standard deviation it is not dominated by a handful of
    # rare preemption stalls in finite runs.
    import numpy as np

    var_ok, evid = True, []
    for payload in payloads:
        v = comparison.virtio[payload].adjusted_rtt_ps
        x = comparison.xdma[payload].adjusted_rtt_ps
        v_spread = float(np.percentile(v, 90) - np.percentile(v, 10)) / 1e6
        x_spread = float(np.percentile(x, 90) - np.percentile(x, 10)) / 1e6
        var_ok &= v_spread < x_spread
        evid.append(f"{payload}B: p90-p10 {v_spread:.1f} vs {x_spread:.1f}")
    checks.append(
        ClaimCheck("VirtIO dispersion (p90-p10) < XDMA dispersion", var_ok, "; ".join(evid))
    )

    # Claim 3: tail gap shrinks at p99.9 ("there isn't a significant
    # difference when we approach 99.9% tail latency").  p99.9 of a
    # finite run is dominated by a handful of samples, so the check
    # aggregates across payload sizes rather than requiring monotone
    # convergence at every single size (the paper's own Table I is not
    # monotone either: at 256 B its XDMA p99.9 is *below* VirtIO's).
    gaps95, gaps999, evid = [], [], []
    for payload in payloads:
        v = comparison.virtio[payload].tail_latencies_us()
        x = comparison.xdma[payload].tail_latencies_us()
        gap95 = (x[95.0] - v[95.0]) / v[95.0]
        gap999 = (x[99.9] - v[99.9]) / v[99.9]
        gaps95.append(gap95)
        gaps999.append(gap999)
        evid.append(f"{payload}B: gap p95 {gap95:+.0%} -> p99.9 {gap999:+.0%}")
    mean_gap95 = sum(gaps95) / len(gaps95)
    mean_gap999 = sum(gaps999) / len(gaps999)
    checks.append(
        ClaimCheck(
            "relative VirtIO advantage shrinks from p95 to p99.9 (mean over payloads)",
            mean_gap999 < mean_gap95,
            f"mean gap p95 {mean_gap95:+.0%} -> p99.9 {mean_gap999:+.0%}; " + "; ".join(evid),
        )
    )

    # Claim 4: VirtIO hardware time exceeds software time; XDMA the
    # reverse ("the time taken by the hardware is higher than the time
    # for software with the VirtIO driver and vice versa").
    v_rows = breakdown_rows(comparison.virtio)
    x_rows = breakdown_rows(comparison.xdma)
    v_ok = all(r.hw_mean_us > r.sw_mean_us for r in v_rows)
    x_ok = all(r.sw_mean_us > r.hw_mean_us for r in x_rows)
    checks.append(
        ClaimCheck(
            "VirtIO: hardware share > software share",
            v_ok,
            "; ".join(f"{r.payload}B: hw {r.hw_mean_us:.1f} sw {r.sw_mean_us:.1f}"
                      for r in v_rows),
        )
    )
    checks.append(
        ClaimCheck(
            "XDMA: software share > hardware share",
            x_ok,
            "; ".join(f"{r.payload}B: hw {r.hw_mean_us:.1f} sw {r.sw_mean_us:.1f}"
                      for r in x_rows),
        )
    )

    # Claim 5: VirtIO software share roughly constant across payloads
    # ("the average latency for the software stack remains virtually
    # constant throughout the range of payloads considered").
    sw_means = [r.sw_mean_us for r in v_rows]
    spread = (max(sw_means) - min(sw_means)) / min(sw_means)
    checks.append(
        ClaimCheck(
            "VirtIO software share constant across payloads (<15% spread)",
            spread < 0.15,
            f"sw means: {', '.join(f'{m:.1f}' for m in sw_means)} (spread {spread:.0%})",
        )
    )

    # Claim 6: hardware variance is minimal compared to software
    # variance ("the time taken by the hardware to perform the DMA
    # operations has minimal variance").
    hw_ok, evid = True, []
    for payload in payloads:
        result = comparison.virtio[payload]
        hw_sd = result.hw_summary().std_us
        sw_sd = result.sw_summary().std_us
        hw_ok &= hw_sd < sw_sd
        evid.append(f"{payload}B: hw sd {hw_sd:.2f} vs sw sd {sw_sd:.2f}")
    checks.append(
        ClaimCheck("VirtIO hardware variance < software variance", hw_ok, "; ".join(evid))
    )

    return checks


def render_claims(checks: Iterable[ClaimCheck]) -> str:
    lines = ["Section V claims:"]
    for check in checks:
        status = "PASS" if check.holds else "FAIL"
        lines.append(f"[{status}] {check.claim}")
        lines.append(f"       {check.evidence}")
    return "\n".join(lines)
