"""Calibration: the parameter set that stands in for the paper's testbed.

The *mechanisms* (which driver performs which MMIO/DMA/IRQ operations)
live in the models; this module only fixes the scalar constants to a
point where the simulated means land in the paper's measured ranges
(Fig. 3-5, Table I) for its hardware: Alinx AX7A200 (Artix-7, PCIe
Gen2 x2, 125 MHz fabric) on a Fedora 37 host.

Every ablation and sensitivity study produces its own profile by
``dataclasses.replace`` on :data:`PAPER_PROFILE` rather than mutating
model internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.host.costs import CostModel, InterferenceModel, default_cost_model
from repro.pcie.link import LinkConfig


@dataclass(frozen=True)
class CalibrationProfile:
    """Everything a testbed builder needs beyond the model code."""

    #: PCIe link parameters (the board negotiates Gen2 x2).
    link: LinkConfig = field(
        default_factory=lambda: LinkConfig(generation=2, lanes=2, propagation_ns=500.0)
    )
    #: Host software cost-model body jitter (lognormal sigma).
    jitter_sigma: float = 0.12
    #: Poisson preemption field (None = default InterferenceModel).
    interference: Optional[InterferenceModel] = None
    #: Disable all software noise (ablation A3).
    noise_enabled: bool = True
    #: VirtIO controller FSM transition cost in fabric cycles; the
    #: dominant knob for the Fig. 4 "hardware" share.
    virtio_fsm_cycles: int = 100
    #: RX descriptor prefetch (ablation A2 turns it off).
    rx_prefetch: bool = True
    #: Host memory read latency serving device DMA reads (ns).
    host_memory_read_ns: float = 75.0
    #: Endpoint completer latency for MMIO reads (ns).
    endpoint_completer_ns: float = 150.0
    #: Scale factor on every host software segment (CPU-speed knob).
    host_speed_factor: float = 1.0
    #: XDMA C2H "data ready" user interrupt + poll() before read()
    #: (ablation A1; False reproduces the paper's favourable setup).
    xdma_c2h_interrupt: bool = False
    #: virtio-net checksum offload offered by the device.
    offer_csum: bool = False
    #: virtio-net control queue offered by the device (adds a third
    #: virtqueue; exercised by the control-path tests/examples).
    offer_ctrl_vq: bool = False

    def build_cost_model(self) -> CostModel:
        """The host cost model this profile implies."""
        model = default_cost_model(
            jitter_sigma=self.jitter_sigma,
            interference=self.interference,
        )
        if self.host_speed_factor != 1.0:
            model = model.scaled(self.host_speed_factor)
        if not self.noise_enabled:
            model = model.without_noise()
        return model

    def with_link(self, generation: int, lanes: int) -> "CalibrationProfile":
        """Sensitivity variant: a different link (ablation A4)."""
        return replace(
            self,
            link=replace(self.link, generation=generation, lanes=lanes),
        )

    def without_noise(self) -> "CalibrationProfile":
        """Ablation A3: deterministic software."""
        return replace(self, noise_enabled=False)

    def without_prefetch(self) -> "CalibrationProfile":
        """Ablation A2: per-delivery descriptor fetch."""
        return replace(self, rx_prefetch=False)

    def with_xdma_c2h_interrupt(self) -> "CalibrationProfile":
        """Ablation A1: the 'real use case' XDMA flow."""
        return replace(self, xdma_c2h_interrupt=True)


#: The profile used for all headline reproductions.
PAPER_PROFILE = CalibrationProfile()

#: Network constants of the paper-style test setup.
HOST_IP = 0x0A00_0001  # 10.0.0.1
FPGA_IP = 0x0A00_0002  # 10.0.0.2
HOST_MAC = b"\x02\x00\x00\x00\x00\x01"
FPGA_MAC = b"\x52\x54\x00\xfa\xce\x01"
TEST_SRC_PORT = 47000
TEST_DST_PORT = 7  # echo

#: Bytes added to a UDP payload by the VirtIO path on the PCIe link:
#: virtio_net_hdr (12) + Ethernet (14) + IPv4 (20) + UDP (8).
VIRTIO_WIRE_OVERHEAD = 12 + 14 + 20 + 8

#: Minimum Ethernet payload (frames are padded up to 60B before the
#: virtio_net_hdr is added).
MIN_WIRE_BYTES = 12 + 60


def xdma_transfer_size(udp_payload: int) -> int:
    """The XDMA transfer size matching a VirtIO test's wire bytes.

    Section IV-B: "The buffer sizes ... are set to ensure that the
    amount of data moved over the PCIe link to the FPGA is the same in
    both VirtIO and XDMA tests taking into account the protocol
    headers."  The VirtIO buffer for a UDP payload of ``p`` bytes is
    ``p + VIRTIO_WIRE_OVERHEAD`` (with Ethernet minimum-frame padding),
    so the XDMA test moves exactly that many bytes.
    """
    if udp_payload <= 0:
        raise ValueError(f"payload must be positive, got {udp_payload}")
    return max(udp_payload + VIRTIO_WIRE_OVERHEAD, MIN_WIRE_BYTES)


#: The paper's payload sweep (Section V: 64 B to 1 KB).
PAPER_PAYLOAD_SIZES = (64, 128, 256, 512, 1024)

#: Packets per payload size in the paper (Section III-B3).  Experiment
#: entry points accept smaller counts for CI-speed runs.
PAPER_PACKETS_PER_SIZE = 50_000
