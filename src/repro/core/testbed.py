"""Testbed builders: the two experimental setups of Section III-B.

* :func:`build_virtio_testbed` -- the FPGA as a VirtIO network device:
  host OS with full network stack, virtio-net driver bound through real
  enumeration and the VirtIO init handshake, UDP echo user logic on the
  FPGA.
* :func:`build_xdma_testbed` -- the XDMA example design: a BRAM behind
  the AXI bypass, the reference character-device driver, no user logic
  (Section III-B2).

Both builders *run* the boot sequence (enumeration, driver probe) on
the simulator so every experiment starts from a fully initialized
machine state reached through the modeled mechanisms.

Since the topology subsystem landed, these builders are thin fronts
over :func:`repro.topology.builder.build_from_spec` with the matching
single-endpoint :class:`~repro.topology.spec.TopologySpec` -- the
construction path is shared with fleet topologies, and the single-device
specs reproduce the original machines byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.calibration import PAPER_PROFILE, CalibrationProfile
from repro.drivers.virtio_net import VirtioNetDriver
from repro.drivers.xdma import XdmaCharDriver
from repro.fpga.user_logic import UserLogic
from repro.fpga.xdma.core import XdmaCore
from repro.host.kernel import HostKernel
from repro.host.netstack.sockets import UdpSocket
from repro.host.netstack.stack import NetworkStack
from repro.pcie.enumeration import DiscoveredFunction
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer
from repro.virtio.controller.device import VirtioFpgaDevice

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.guest.vmm import Vmm
    from repro.workload.metrics import RunMetrics


class TestbedError(RuntimeError):
    """Boot sequence failed (enumeration or driver probe)."""


@dataclass
class VirtioTestbed:
    """A booted VirtIO network-device setup."""

    sim: Simulator
    kernel: HostKernel
    stack: NetworkStack
    device: VirtioFpgaDevice
    driver: VirtioNetDriver
    socket: UdpSocket
    user_logic: UserLogic
    function: DiscoveredFunction
    profile: CalibrationProfile
    injector: Optional["FaultInjector"] = None
    #: Guest VMM interposer, attached by the topology builder when the
    #: spec carries a GuestSpec with mode != "bare" (None on bare metal).
    vmm: Optional["Vmm"] = None

    @property
    def perf(self):
        return self.device.perf

    # -- workload attachment ------------------------------------------------

    def open_socket(self, port: int) -> UdpSocket:
        """A fresh UDP socket bound to *port* on the booted stack
        (workload generators open one per traffic loop)."""
        socket = UdpSocket(self.kernel, self.stack)
        socket.bind(port)
        return socket

    def tx_has_room(self) -> bool:
        """Whether the transmit path can accept another frame right now
        (open-loop generators tail-drop when it cannot)."""
        return self.driver.tx_has_room()

    def run_workload(self, generator, fault_plan: Optional["FaultPlan"] = None) -> "RunMetrics":
        """Attach a workload generator and drive it to completion.

        *fault_plan* attaches an injector first (no-op when one is
        already attached)."""
        if fault_plan is not None and self.injector is None:
            from repro.faults.injector import attach_fault_plan

            attach_fault_plan(self, fault_plan)
        return generator.run(self)


@dataclass
class XdmaTestbed:
    """A booted XDMA example-design setup."""

    sim: Simulator
    kernel: HostKernel
    xdma: XdmaCore
    driver: XdmaCharDriver
    function: DiscoveredFunction
    profile: CalibrationProfile
    injector: Optional["FaultInjector"] = None
    #: Guest VMM interposer (see VirtioTestbed.vmm).
    vmm: Optional["Vmm"] = None

    @property
    def perf(self):
        return self.xdma.perf

    def run_workload(self, generator, fault_plan: Optional["FaultPlan"] = None) -> "RunMetrics":
        """Attach a workload generator and drive it to completion.

        *fault_plan* attaches an injector first (no-op when one is
        already attached)."""
        if fault_plan is not None and self.injector is None:
            from repro.faults.injector import attach_fault_plan

            attach_fault_plan(self, fault_plan)
        return generator.run(self)


@dataclass
class ConsoleTestbed:
    """A booted virtio-console setup (the device type of [14])."""

    sim: Simulator
    kernel: HostKernel
    device: VirtioFpgaDevice
    driver: "VirtioConsoleDriver"
    profile: CalibrationProfile


@dataclass
class BlockTestbed:
    """A booted virtio-blk setup (one of the added device types)."""

    sim: Simulator
    kernel: HostKernel
    device: VirtioFpgaDevice
    driver: "VirtioBlkDriver"
    profile: CalibrationProfile


def build_virtio_testbed(
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    tracer: Optional[Tracer] = None,
    user_logic: Optional[UserLogic] = None,
    fault_plan: Optional["FaultPlan"] = None,
) -> VirtioTestbed:
    """Construct and boot the VirtIO NIC testbed.

    When *fault_plan* is given, a :class:`~repro.faults.FaultInjector`
    is attached *after* boot (the probe always runs fault-free), so
    only post-boot traffic is subject to injection.
    """
    from repro.topology.builder import build_from_spec
    from repro.topology.spec import TopologySpec

    return build_from_spec(
        TopologySpec.single_virtio(),
        seed=seed,
        profile=profile,
        tracer=tracer,
        user_logic=user_logic,
        fault_plan=fault_plan,
    )


def build_xdma_testbed(
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    tracer: Optional[Tracer] = None,
    bram_size: int = 64 << 10,
    fault_plan: Optional["FaultPlan"] = None,
) -> XdmaTestbed:
    """Construct and boot the XDMA example-design testbed.

    Section III-B2: "a BRAM is connected directly to an AXI
    memory-mapped interface of the PCIe IP ... Minor modifications were
    made to change the width of the memory to match that used in the
    VirtIO design" -- the BRAM here is byte-identical in width to the
    VirtIO testbed's.
    """
    from repro.topology.builder import build_from_spec
    from repro.topology.spec import TopologySpec

    return build_from_spec(
        TopologySpec.single_xdma(),
        seed=seed,
        profile=profile,
        tracer=tracer,
        bram_size=bram_size,
        fault_plan=fault_plan,
    )


def build_console_testbed(
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    echo: bool = True,
) -> ConsoleTestbed:
    """Construct and boot a virtio-console device + front-end driver.

    Demonstrates Section III-A's point that switching device types only
    changes the personality (device-specific config + queue roles) --
    the controller, transport driver, and host plumbing are unchanged.
    """
    from repro.topology.builder import build_from_spec
    from repro.topology.spec import TopologySpec

    return build_from_spec(
        TopologySpec.single_console(), seed=seed, profile=profile, echo=echo
    )


def build_block_testbed(
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    capacity_sectors: int = 8192,
) -> BlockTestbed:
    """Construct and boot a virtio-blk device + front-end driver."""
    from repro.topology.builder import build_from_spec
    from repro.topology.spec import TopologySpec

    return build_from_spec(
        TopologySpec.single_block(),
        seed=seed,
        profile=profile,
        capacity_sectors=capacity_sectors,
    )
