"""Testbed builders: the two experimental setups of Section III-B.

* :func:`build_virtio_testbed` -- the FPGA as a VirtIO network device:
  host OS with full network stack, virtio-net driver bound through real
  enumeration and the VirtIO init handshake, UDP echo user logic on the
  FPGA.
* :func:`build_xdma_testbed` -- the XDMA example design: a BRAM behind
  the AXI bypass, the reference character-device driver, no user logic
  (Section III-B2).

Both builders *run* the boot sequence (enumeration, driver probe) on
the simulator so every experiment starts from a fully initialized
machine state reached through the modeled mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.calibration import (
    FPGA_IP,
    FPGA_MAC,
    HOST_IP,
    PAPER_PROFILE,
    TEST_SRC_PORT,
    CalibrationProfile,
)
from repro.drivers.virtio_net import VirtioNetDriver
from repro.drivers.xdma import XdmaCharDriver
from repro.fpga.user_logic import EchoUserLogic, UserLogic
from repro.fpga.xdma.core import XdmaCore
from repro.host.kernel import HostKernel
from repro.host.netstack.ip import Route
from repro.host.netstack.sockets import UdpSocket
from repro.host.netstack.stack import NetworkStack
from repro.mem.fpga_mem import Bram
from repro.pcie.enumeration import DiscoveredFunction, enumerate_all
from repro.pcie.root_complex import RootComplex
from repro.sim.kernel import Simulator
from repro.sim.trace import Tracer
from repro.virtio.controller.device import VirtioFpgaDevice
from repro.virtio.controller.net import VirtioNetPersonality

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.workload.metrics import RunMetrics


class TestbedError(RuntimeError):
    """Boot sequence failed (enumeration or driver probe)."""


def _boot(sim: Simulator, rc: RootComplex) -> list:
    """Run enumeration to completion; return discovered functions."""
    boot = sim.spawn(enumerate_all(rc), name="boot")
    sim.run_until_triggered(boot)
    functions = boot.result
    if not functions:
        raise TestbedError("enumeration found no device")
    return functions


@dataclass
class VirtioTestbed:
    """A booted VirtIO network-device setup."""

    sim: Simulator
    kernel: HostKernel
    stack: NetworkStack
    device: VirtioFpgaDevice
    driver: VirtioNetDriver
    socket: UdpSocket
    user_logic: UserLogic
    function: DiscoveredFunction
    profile: CalibrationProfile
    injector: Optional["FaultInjector"] = None

    @property
    def perf(self):
        return self.device.perf

    # -- workload attachment ------------------------------------------------

    def open_socket(self, port: int) -> UdpSocket:
        """A fresh UDP socket bound to *port* on the booted stack
        (workload generators open one per traffic loop)."""
        socket = UdpSocket(self.kernel, self.stack)
        socket.bind(port)
        return socket

    def tx_has_room(self) -> bool:
        """Whether the transmit path can accept another frame right now
        (open-loop generators tail-drop when it cannot)."""
        return self.driver.tx_has_room()

    def run_workload(self, generator, fault_plan: Optional["FaultPlan"] = None) -> "RunMetrics":
        """Attach a workload generator and drive it to completion.

        *fault_plan* attaches an injector first (no-op when one is
        already attached)."""
        if fault_plan is not None and self.injector is None:
            from repro.faults.injector import attach_fault_plan

            attach_fault_plan(self, fault_plan)
        return generator.run(self)


@dataclass
class XdmaTestbed:
    """A booted XDMA example-design setup."""

    sim: Simulator
    kernel: HostKernel
    xdma: XdmaCore
    driver: XdmaCharDriver
    function: DiscoveredFunction
    profile: CalibrationProfile
    injector: Optional["FaultInjector"] = None

    @property
    def perf(self):
        return self.xdma.perf

    def run_workload(self, generator, fault_plan: Optional["FaultPlan"] = None) -> "RunMetrics":
        """Attach a workload generator and drive it to completion.

        *fault_plan* attaches an injector first (no-op when one is
        already attached)."""
        if fault_plan is not None and self.injector is None:
            from repro.faults.injector import attach_fault_plan

            attach_fault_plan(self, fault_plan)
        return generator.run(self)


def build_virtio_testbed(
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    tracer: Optional[Tracer] = None,
    user_logic: Optional[UserLogic] = None,
    fault_plan: Optional["FaultPlan"] = None,
) -> VirtioTestbed:
    """Construct and boot the VirtIO NIC testbed.

    When *fault_plan* is given, a :class:`~repro.faults.FaultInjector`
    is attached *after* boot (the probe always runs fault-free), so
    only post-boot traffic is subject to injection.
    """
    sim = Simulator(seed=seed)
    rc = RootComplex(
        sim, memory_read_latency_ns=profile.host_memory_read_ns, tracer=tracer
    )
    kernel = HostKernel(sim, rc, costs=profile.build_cost_model(), tracer=tracer)
    stack = NetworkStack(kernel)

    _, link = rc.create_port(profile.link)
    logic = user_logic if user_logic is not None else EchoUserLogic(sim)
    if tracer is not None:
        logic.tracer = tracer
    personality = VirtioNetPersonality(
        logic,
        mac=FPGA_MAC,
        offer_csum=profile.offer_csum,
        offer_ctrl_vq=profile.offer_ctrl_vq,
    )
    device = VirtioFpgaDevice(
        sim,
        link,
        personality,
        fsm_cycles=profile.virtio_fsm_cycles,
        rx_prefetch=profile.rx_prefetch,
        tracer=tracer,
    )
    device.xdma.endpoint.completer_latency = _ns(profile.endpoint_completer_ns)

    functions = _boot(sim, rc)
    function = functions[0]

    driver = VirtioNetDriver(kernel, stack, function)
    probe = sim.spawn(driver.probe(HOST_IP), name="virtio-net-probe")
    sim.run_until_triggered(probe)
    # Drain in-flight posted writes and the device's RX-buffer prefetch
    # so experiments start from a quiescent, fully initialized machine.
    sim.run()

    # Routing + static ARP, as the paper's setup prescribes.
    stack.routes.add(Route(network=FPGA_IP & 0xFFFF_FF00, prefix_len=24, device="virtio0"))
    stack.arp.add_static(FPGA_IP, FPGA_MAC)

    socket = UdpSocket(kernel, stack)
    socket.bind(TEST_SRC_PORT)

    testbed = VirtioTestbed(
        sim=sim,
        kernel=kernel,
        stack=stack,
        device=device,
        driver=driver,
        socket=socket,
        user_logic=logic,
        function=function,
        profile=profile,
    )
    if fault_plan is not None:
        from repro.faults.injector import attach_fault_plan

        attach_fault_plan(testbed, fault_plan)
    return testbed


def build_xdma_testbed(
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    tracer: Optional[Tracer] = None,
    bram_size: int = 64 << 10,
    fault_plan: Optional["FaultPlan"] = None,
) -> XdmaTestbed:
    """Construct and boot the XDMA example-design testbed.

    Section III-B2: "a BRAM is connected directly to an AXI
    memory-mapped interface of the PCIe IP ... Minor modifications were
    made to change the width of the memory to match that used in the
    VirtIO design" -- the BRAM here is byte-identical in width to the
    VirtIO testbed's.
    """
    sim = Simulator(seed=seed)
    rc = RootComplex(
        sim, memory_read_latency_ns=profile.host_memory_read_ns, tracer=tracer
    )
    kernel = HostKernel(sim, rc, costs=profile.build_cost_model(), tracer=tracer)

    _, link = rc.create_port(profile.link)
    xdma = XdmaCore(sim, link, tracer=tracer)
    xdma.endpoint.completer_latency = _ns(profile.endpoint_completer_ns)
    xdma.attach_axi(0, Bram(bram_size, name="xdma-bram"))

    functions = _boot(sim, rc)
    function = functions[0]

    driver = XdmaCharDriver(kernel, function)
    probe = sim.spawn(driver.probe(), name="xdma-probe")
    sim.run_until_triggered(probe)
    sim.run()  # drain in-flight posted register writes
    if profile.xdma_c2h_interrupt:
        # A1 ablation: fabric logic watches the H2C engine's status,
        # processes the received data (byte-serial passes, like the
        # VirtIO design's user logic), and raises a user interrupt when
        # results are ready -- so the application poll()s before read()
        # (the "real use case" flow the paper's favourable setup avoids,
        # Section IV-C).
        driver.enable_c2h_notification(True)
        engine = xdma.h2c[0]

        def _process_then_notify():
            from repro.fpga.user_logic import streaming_cycles

            def body():
                passes = 3  # parse + compute + write back
                cycles = passes * streaming_cycles(engine.last_descriptor_length)
                yield xdma.clock.cycles_to_time(cycles)
                xdma.raise_user_irq(0)

            xdma.spawn(body(), name="a1-user-logic")

        engine.completion_hook = _process_then_notify

    testbed = XdmaTestbed(
        sim=sim, kernel=kernel, xdma=xdma, driver=driver, function=function, profile=profile
    )
    if fault_plan is not None:
        from repro.faults.injector import attach_fault_plan

        attach_fault_plan(testbed, fault_plan)
    return testbed


@dataclass
class ConsoleTestbed:
    """A booted virtio-console setup (the device type of [14])."""

    sim: Simulator
    kernel: HostKernel
    device: VirtioFpgaDevice
    driver: "VirtioConsoleDriver"
    profile: CalibrationProfile


@dataclass
class BlockTestbed:
    """A booted virtio-blk setup (one of the added device types)."""

    sim: Simulator
    kernel: HostKernel
    device: VirtioFpgaDevice
    driver: "VirtioBlkDriver"
    profile: CalibrationProfile


def build_console_testbed(
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    echo: bool = True,
) -> ConsoleTestbed:
    """Construct and boot a virtio-console device + front-end driver.

    Demonstrates Section III-A's point that switching device types only
    changes the personality (device-specific config + queue roles) --
    the controller, transport driver, and host plumbing are unchanged.
    """
    from repro.drivers.virtio_console import VirtioConsoleDriver
    from repro.virtio.controller.console import VirtioConsolePersonality

    sim = Simulator(seed=seed)
    rc = RootComplex(sim, memory_read_latency_ns=profile.host_memory_read_ns)
    kernel = HostKernel(sim, rc, costs=profile.build_cost_model())
    _, link = rc.create_port(profile.link)
    personality = VirtioConsolePersonality(echo=echo)
    device = VirtioFpgaDevice(
        sim, link, personality, name="virtio-console",
        fsm_cycles=profile.virtio_fsm_cycles,
    )
    function = _boot(sim, rc)[0]
    driver = VirtioConsoleDriver(kernel, function)
    probe = sim.spawn(driver.probe(), name="console-probe")
    sim.run_until_triggered(probe)
    sim.run()
    return ConsoleTestbed(sim=sim, kernel=kernel, device=device, driver=driver,
                          profile=profile)


def build_block_testbed(
    seed: int = 0,
    profile: CalibrationProfile = PAPER_PROFILE,
    capacity_sectors: int = 8192,
) -> BlockTestbed:
    """Construct and boot a virtio-blk device + front-end driver."""
    from repro.drivers.virtio_blk import VirtioBlkDriver
    from repro.virtio.controller.block import VirtioBlockPersonality

    sim = Simulator(seed=seed)
    rc = RootComplex(sim, memory_read_latency_ns=profile.host_memory_read_ns)
    kernel = HostKernel(sim, rc, costs=profile.build_cost_model())
    _, link = rc.create_port(profile.link)
    personality = VirtioBlockPersonality(capacity_sectors=capacity_sectors)
    device = VirtioFpgaDevice(
        sim, link, personality, name="virtio-blk",
        fsm_cycles=profile.virtio_fsm_cycles,
    )
    function = _boot(sim, rc)[0]
    driver = VirtioBlkDriver(kernel, function)
    probe = sim.spawn(driver.probe(), name="blk-probe")
    sim.run_until_triggered(probe)
    sim.run()
    return BlockTestbed(sim=sim, kernel=kernel, device=device, driver=driver,
                        profile=profile)


def _ns(value: float) -> int:
    from repro.sim.time import ns

    return ns(value)
