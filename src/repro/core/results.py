"""Result containers for the latency experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.stats.histogram import Histogram
from repro.stats.percentile import percentiles_us
from repro.stats.summary import LatencySummary


@dataclass
class PayloadResult:
    """All series measured for one payload size with one driver.

    Arrays are per-packet, int64 picoseconds:

    * ``rtt_ps`` -- the application's ``clock_gettime`` round trip,
    * ``hw_ps`` -- FPGA hardware time from the performance counters
      (8 ns resolution), i.e. DMA work per round trip,
    * ``resp_ps`` -- response-generation time (VirtIO only; the paper
      deducts it, Section IV-B).

    The software component is derived: ``rtt - hw - resp`` (minus the
    VMM trap time when a ``trap_ps`` series is attached).
    """

    payload: int
    rtt_ps: np.ndarray
    hw_ps: np.ndarray
    resp_ps: np.ndarray
    #: VMM world-switch time attributable to each round trip
    #: (experiment E-V1; None outside the guest layer).
    trap_ps: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        n = len(self.rtt_ps)
        if len(self.hw_ps) != n or len(self.resp_ps) != n:
            raise ValueError(
                f"series length mismatch: rtt={n} hw={len(self.hw_ps)} resp={len(self.resp_ps)}"
            )
        if self.trap_ps is not None and len(self.trap_ps) != n:
            raise ValueError(
                f"series length mismatch: rtt={n} trap={len(self.trap_ps)}"
            )

    @property
    def packets(self) -> int:
        return int(len(self.rtt_ps))

    @property
    def sw_ps(self) -> np.ndarray:
        """Software-stack latency per packet (never negative).  When a
        VMM trap series is attached, trap time is reported separately
        rather than inflating the guest-software bar."""
        sw = self.rtt_ps - self.hw_ps - self.resp_ps
        if self.trap_ps is not None:
            sw = sw - self.trap_ps
        return np.maximum(sw, 0)

    def trap_summary(self) -> LatencySummary:
        if self.trap_ps is None:
            raise ValueError("no trap series attached (bare-metal result)")
        return LatencySummary.from_ps(self.trap_ps)

    @property
    def adjusted_rtt_ps(self) -> np.ndarray:
        """Round trip with response generation deducted (the series the
        paper's Fig. 3/Table I report for VirtIO)."""
        return self.rtt_ps - self.resp_ps

    def rtt_summary(self) -> LatencySummary:
        return LatencySummary.from_ps(self.adjusted_rtt_ps)

    def hw_summary(self) -> LatencySummary:
        return LatencySummary.from_ps(self.hw_ps)

    def sw_summary(self) -> LatencySummary:
        return LatencySummary.from_ps(self.sw_ps)

    def tail_latencies_us(self) -> Dict[float, float]:
        return percentiles_us(self.adjusted_rtt_ps)

    def histogram(self, bins: int = 60) -> Histogram:
        return Histogram.from_ps(self.adjusted_rtt_ps, bins=bins)


@dataclass
class SweepResult:
    """One driver's full payload sweep."""

    driver: str
    payloads: Dict[int, PayloadResult] = field(default_factory=dict)
    seed: int = 0

    def add(self, result: PayloadResult) -> None:
        self.payloads[result.payload] = result

    def payload_sizes(self) -> List[int]:
        return sorted(self.payloads)

    def __getitem__(self, payload: int) -> PayloadResult:
        return self.payloads[payload]

    def summary_table(self) -> str:
        """Human-readable per-payload summary."""
        rows = [
            f"{'payload':>8} {'mean':>8} {'sd':>7} {'p95':>8} {'p99':>8} "
            f"{'p99.9':>8} {'hw-mean':>8} {'sw-mean':>8}   (us, driver={self.driver})"
        ]
        for payload in self.payload_sizes():
            r = self.payloads[payload]
            s = r.rtt_summary()
            rows.append(
                f"{payload:>8} {s.mean_us:>8.1f} {s.std_us:>7.1f} {s.p95_us:>8.1f} "
                f"{s.p99_us:>8.1f} {s.p999_us:>8.1f} "
                f"{r.hw_summary().mean_us:>8.1f} {r.sw_summary().mean_us:>8.1f}"
            )
        return "\n".join(rows)


@dataclass
class ComparisonResult:
    """Both drivers' sweeps over the same payload set (Fig. 3 input)."""

    virtio: SweepResult
    xdma: SweepResult

    def payload_sizes(self) -> List[int]:
        shared = set(self.virtio.payloads) & set(self.xdma.payloads)
        return sorted(shared)

    def table1_rows(self) -> List[Dict[str, object]]:
        """Machine-readable Table I (one dict per payload; the CLI's
        ``--json`` rendering and the benchmark harness consume this)."""
        rows: List[Dict[str, object]] = []
        for payload in self.payload_sizes():
            row: Dict[str, object] = {"payload": payload}
            for name, sweep in (("virtio", self.virtio), ("xdma", self.xdma)):
                result = sweep[payload]
                tails = result.tail_latencies_us()
                summary = result.rtt_summary()
                row[name] = {
                    "mean_us": summary.mean_us,
                    "std_us": summary.std_us,
                    "p95_us": tails[95.0],
                    "p99_us": tails[99.0],
                    "p999_us": tails[99.9],
                }
            rows.append(row)
        return rows

    def table1(self) -> str:
        """Render the Table I layout: tail latencies per payload."""
        rows = [
            f"{'Payload':>8} | {'95% (us)':>17} | {'99% (us)':>17} | {'99.9% (us)':>17}",
            f"{'(Bytes)':>8} | {'VirtIO':>8} {'XDMA':>8} | {'VirtIO':>8} {'XDMA':>8} "
            f"| {'VirtIO':>8} {'XDMA':>8}",
        ]
        for payload in self.payload_sizes():
            v = self.virtio[payload].tail_latencies_us()
            x = self.xdma[payload].tail_latencies_us()
            rows.append(
                f"{payload:>8} | {v[95.0]:>8.1f} {x[95.0]:>8.1f} "
                f"| {v[99.0]:>8.1f} {x[99.0]:>8.1f} "
                f"| {v[99.9]:>8.1f} {x[99.9]:>8.1f}"
            )
        return "\n".join(rows)


@dataclass
class BreakdownRow:
    """One bar group of Fig. 4 / Fig. 5: the hw/sw split at a payload."""

    payload: int
    hw_mean_us: float
    hw_std_us: float
    sw_mean_us: float
    sw_std_us: float

    @property
    def total_mean_us(self) -> float:
        return self.hw_mean_us + self.sw_mean_us


def breakdown_rows(sweep: SweepResult) -> List[BreakdownRow]:
    """Derive the Fig. 4/5 breakdown from a sweep."""
    rows = []
    for payload in sweep.payload_sizes():
        result = sweep[payload]
        hw = result.hw_summary()
        sw = result.sw_summary()
        rows.append(
            BreakdownRow(
                payload=payload,
                hw_mean_us=hw.mean_us,
                hw_std_us=hw.std_us,
                sw_mean_us=sw.mean_us,
                sw_std_us=sw.std_us,
            )
        )
    return rows


def render_breakdown(sweep: SweepResult, title: str) -> str:
    """Text rendering of a Fig. 4/5-style breakdown."""
    rows = [title]
    rows.append(
        f"{'payload':>8} {'hw mean':>9} {'hw sd':>8} {'sw mean':>9} {'sw sd':>8} "
        f"{'total':>9}  (us)"
    )
    for row in breakdown_rows(sweep):
        rows.append(
            f"{row.payload:>8} {row.hw_mean_us:>9.1f} {row.hw_std_us:>8.2f} "
            f"{row.sw_mean_us:>9.1f} {row.sw_std_us:>8.2f} {row.total_mean_us:>9.1f}"
        )
    return "\n".join(rows)
