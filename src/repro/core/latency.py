"""The round-trip latency experiment (Section III-B3).

Runs the paper's measurement loop on a booted testbed: for each payload
size, a user-space test application sends a packet, waits for the
echoed response, and timestamps the round trip with
``clock_gettime(CLOCK_MONOTONIC)``; the FPGA's performance counters
capture the hardware share of each round trip.

The VirtIO application uses the socket API (UDP to the FPGA's IP); the
XDMA application does ``write()``/``read()`` of the wire-equivalent
byte count on the character device, back-to-back without an interposed
device interrupt -- the paper's favourable-to-XDMA arrangement
(Section IV-C).
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Union

import numpy as np

from repro.core.calibration import (
    FPGA_IP,
    PAPER_PAYLOAD_SIZES,
    TEST_DST_PORT,
    xdma_transfer_size,
)
from repro.core.results import PayloadResult, SweepResult
from repro.core.testbed import VirtioTestbed, XdmaTestbed
from repro.host.chardev import sys_poll, sys_read, sys_write
from repro.sim.time import NS


class ExperimentError(RuntimeError):
    """Measurement invariants violated (lost packets, counter drift)."""


def _test_payload(size: int, sequence: int) -> bytes:
    """Deterministic payload pattern (sequence-stamped)."""
    pattern = bytes((sequence + i) & 0xFF for i in range(min(size, 16)))
    return (pattern * (size // len(pattern) + 1))[:size] if pattern else bytes(size)


def _virtio_app(
    testbed: VirtioTestbed, payload_size: int, packets: int, rtts_ps: List[int]
) -> Generator[Any, Any, None]:
    """The VirtIO test application: UDP echo round trips."""
    kernel = testbed.kernel
    socket = testbed.socket
    for sequence in range(packets):
        payload = _test_payload(payload_size, sequence)
        yield kernel.clock.call_cost()
        t0_ns = kernel.gettime_ns()
        yield from socket.sendto(payload, FPGA_IP, TEST_DST_PORT)
        data, _source = yield from socket.recvfrom()
        yield kernel.clock.call_cost()
        t1_ns = kernel.gettime_ns()
        if len(data) != payload_size:
            raise ExperimentError(
                f"echo size mismatch: sent {payload_size}B, got {len(data)}B"
            )
        rtts_ps.append((t1_ns - t0_ns) * NS)
        yield kernel.cpu("app_work")


def _xdma_app(
    testbed: XdmaTestbed, transfer_size: int, packets: int, rtts_ps: List[int]
) -> Generator[Any, Any, None]:
    """The XDMA test application: write()+read() round trips."""
    kernel = testbed.kernel
    driver = testbed.driver
    use_poll = testbed.profile.xdma_c2h_interrupt
    for sequence in range(packets):
        payload = _test_payload(transfer_size, sequence)
        yield kernel.clock.call_cost()
        t0_ns = kernel.gettime_ns()
        written = yield from sys_write(kernel, driver, payload)
        if written != transfer_size:
            raise ExperimentError(f"short write: {written} of {transfer_size}")
        if use_poll:
            yield from sys_poll(kernel, driver)
        data = yield from sys_read(kernel, driver, transfer_size)
        yield kernel.clock.call_cost()
        t1_ns = kernel.gettime_ns()
        if len(data) != transfer_size:
            raise ExperimentError(f"short read: {len(data)} of {transfer_size}")
        rtts_ps.append((t1_ns - t0_ns) * NS)
        yield kernel.cpu("app_work")


def _collect(perf, counter: str, packets: int, strict: bool = True) -> np.ndarray:
    """Drain a perf counter's intervals, validating the packet count.

    With ``strict=False`` (fault-injection runs, where retries and
    resets legitimately disturb the one-interval-per-packet invariant) a
    mismatch yields zeros instead of failing the experiment: the
    hardware breakdown is undefined under faults, but the RTT
    distribution -- what the fault experiments measure -- is not.
    """
    values = perf.intervals_array(counter)
    if len(values) != packets:
        if not strict:
            return np.zeros(packets, dtype=np.int64)
        raise ExperimentError(
            f"counter {counter!r} recorded {len(values)} intervals for {packets} packets"
        )
    return values


def run_virtio_payload(
    testbed: VirtioTestbed, payload_size: int, packets: int
) -> PayloadResult:
    """Measure one payload size on the VirtIO testbed."""
    if packets <= 0:
        raise ValueError(f"packets must be positive, got {packets}")
    perf = testbed.perf
    perf.clear()
    rtts: List[int] = []
    app = testbed.sim.spawn(
        _virtio_app(testbed, payload_size, packets, rtts), name="virtio-app"
    )
    testbed.sim.run_until_triggered(app)
    strict = testbed.injector is None
    hw = _collect(perf, "virtio_h2c", packets, strict) + _collect(
        perf, "virtio_c2h", packets, strict
    )
    resp = _collect(perf, "virtio_resp", packets, strict)
    return PayloadResult(
        payload=payload_size,
        rtt_ps=np.asarray(rtts, dtype=np.int64),
        hw_ps=hw,
        resp_ps=resp,
    )


def run_xdma_payload(
    testbed: XdmaTestbed, payload_size: int, packets: int
) -> PayloadResult:
    """Measure one payload size on the XDMA testbed.

    ``payload_size`` is the experiment label (the UDP payload of the
    VirtIO test); the transfer moves :func:`xdma_transfer_size` bytes so
    both tests put the same byte count on the link (Section IV-B).
    """
    if packets <= 0:
        raise ValueError(f"packets must be positive, got {packets}")
    perf = testbed.perf
    perf.clear()
    transfer = xdma_transfer_size(payload_size)
    rtts: List[int] = []
    app = testbed.sim.spawn(_xdma_app(testbed, transfer, packets, rtts), name="xdma-app")
    testbed.sim.run_until_triggered(app)
    strict = testbed.injector is None
    hw = _collect(perf, "h2c0_dma", packets, strict) + _collect(
        perf, "c2h0_dma", packets, strict
    )
    return PayloadResult(
        payload=payload_size,
        rtt_ps=np.asarray(rtts, dtype=np.int64),
        hw_ps=hw,
        resp_ps=np.zeros(packets, dtype=np.int64),
    )


Testbed = Union[VirtioTestbed, XdmaTestbed]


def run_latency_sweep(
    testbed: Testbed,
    payload_sizes: Iterable[int] = PAPER_PAYLOAD_SIZES,
    packets: int = 2000,
    fault_plan=None,
) -> SweepResult:
    """Run the full payload sweep on either testbed.

    *fault_plan* (a :class:`repro.faults.FaultPlan`) attaches an
    injector before the sweep when the testbed does not carry one yet.
    """
    if fault_plan is not None and testbed.injector is None:
        from repro.faults.injector import attach_fault_plan

        attach_fault_plan(testbed, fault_plan)
    if isinstance(testbed, VirtioTestbed):
        sweep = SweepResult(driver="virtio", seed=testbed.sim.seed)
        for size in payload_sizes:
            sweep.add(run_virtio_payload(testbed, size, packets))
        return sweep
    if isinstance(testbed, XdmaTestbed):
        sweep = SweepResult(driver="xdma", seed=testbed.sim.seed)
        for size in payload_sizes:
            sweep.add(run_xdma_payload(testbed, size, packets))
        return sweep
    raise TypeError(f"unknown testbed type {type(testbed).__name__}")
