"""Experiment layer: testbeds, calibration, latency runs, and the
figure/table reproductions."""

from repro.core.calibration import (
    FPGA_IP,
    FPGA_MAC,
    HOST_IP,
    PAPER_PACKETS_PER_SIZE,
    PAPER_PAYLOAD_SIZES,
    PAPER_PROFILE,
    TEST_DST_PORT,
    TEST_SRC_PORT,
    VIRTIO_WIRE_OVERHEAD,
    CalibrationProfile,
    xdma_transfer_size,
)
from repro.core.latency import (
    ExperimentError,
    run_latency_sweep,
    run_virtio_payload,
    run_xdma_payload,
)
from repro.core.results import (
    BreakdownRow,
    ComparisonResult,
    PayloadResult,
    SweepResult,
    breakdown_rows,
    render_breakdown,
)
from repro.core.testbed import (
    TestbedError,
    VirtioTestbed,
    XdmaTestbed,
    build_virtio_testbed,
    build_xdma_testbed,
)

__all__ = [
    "BreakdownRow",
    "CalibrationProfile",
    "ComparisonResult",
    "ExperimentError",
    "FPGA_IP",
    "FPGA_MAC",
    "HOST_IP",
    "PAPER_PACKETS_PER_SIZE",
    "PAPER_PAYLOAD_SIZES",
    "PAPER_PROFILE",
    "PayloadResult",
    "SweepResult",
    "TEST_DST_PORT",
    "TEST_SRC_PORT",
    "TestbedError",
    "VIRTIO_WIRE_OVERHEAD",
    "VirtioTestbed",
    "XdmaTestbed",
    "breakdown_rows",
    "build_virtio_testbed",
    "build_xdma_testbed",
    "render_breakdown",
    "run_latency_sweep",
    "run_virtio_payload",
    "run_xdma_payload",
    "xdma_transfer_size",
]
