"""Root complex: the host side of the PCIe hierarchy.

Responsibilities:

* terminate upstream TLPs: route device DMA to host memory, detect MSI
  writes and hand them to the interrupt controller callback,
* serve host-initiated MMIO and configuration transactions toward the
  right endpoint link (with the real non-posted round-trip timing that
  makes MMIO reads expensive and MMIO writes cheap-but-posted -- the
  asymmetry at the heart of the two drivers' costs),
* host memory read latency for device-issued DMA reads (DRAM access
  before the completion is returned).

One :class:`RootPort` per endpoint link; the :class:`RootComplex` owns
them plus host memory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.mem.physical import PhysicalMemory
from repro.pcie.link import LinkConfig, PcieLink
from repro.pcie.msi import is_msi_address
from repro.pcie.tlp import (
    CompletionStatus,
    Tlp,
    TlpKind,
    config_read,
    config_write,
    memory_read,
    memory_write,
    split_completion,
)
from repro.sim.component import Component
from repro.sim.event import Event
from repro.sim.time import SimTime, ns

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: Host MMIO window where BARs are assigned during enumeration.
MMIO_WINDOW_BASE = 0xE000_0000
MMIO_WINDOW_SIZE = 0x1000_0000

MsiHandler = Callable[[int, int], None]  # (address, data)

#: Inlined MSI-window test constants (see :func:`repro.pcie.msi.is_msi_address`).
_MSI_MASK = 0xFFF0_0000
_MSI_WINDOW = 0xFEE0_0000


class _HostPendingRead:
    __slots__ = ("expected", "chunks", "received", "event")

    def __init__(self, expected: int, event: Event) -> None:
        self.expected = expected
        self.chunks: List[bytes] = []
        self.received = 0
        self.event = event


class RootPort(Component):
    """One downstream port: terminates a single endpoint link."""

    def __init__(
        self,
        sim: "Simulator",
        rc: "RootComplex",
        link: PcieLink,
        port_index: int,
        parent: Optional[Component] = None,
    ) -> None:
        super().__init__(sim, f"port{port_index}", parent=parent)
        self.rc = rc
        self.link = link
        self.port_index = port_index
        self._pending: Dict[int, _HostPendingRead] = {}
        self._pending_nonposted: Dict[int, Event] = {}
        # ``link.downstream.post``, bound lazily on first DMA read (the
        # downstream direction attaches when the endpoint is built).
        self._post_down = None
        link.attach_root_rx(self._receive_upstream)

    # -- upstream (device-initiated) ------------------------------------------

    def _receive_upstream(self, tlp: Tlp) -> None:
        kind = tlp.kind
        if kind is TlpKind.MEM_WRITE:
            # Inlined ``is_msi_address``: one masked compare per DMA write.
            if tlp.addr & _MSI_MASK == _MSI_WINDOW:
                self.trace("msi-rx", addr=tlp.addr)
                self.rc.deliver_msi(tlp.addr, int.from_bytes(tlp.data, "little"))
            else:
                self.rc.host_memory.write(tlp.addr, tlp.data)
                if self.tracer.enabled:
                    self.trace("dma-write", addr=tlp.addr, length=tlp.length)
        elif kind is TlpKind.MEM_READ:
            if self.tracer.enabled:
                self.trace("dma-read", addr=tlp.addr, length=tlp.length)
            data = self.rc.host_memory.read(tlp.addr, tlp.length)
            post = self._post_down
            if post is None:
                post = self._post_down = self.link.downstream.post
            self.sim.schedule_many(
                self.rc.memory_read_latency,
                post,
                [(cpl,) for cpl in split_completion(
                    tlp, data, rcb=self.link.config.read_completion_boundary
                )],
            )
        elif kind is TlpKind.COMPLETION or kind is TlpKind.COMPLETION_DATA:
            self._handle_completion(tlp)
        else:
            raise RuntimeError(f"root port {self.port_index}: unexpected upstream {tlp!r}")

    def _handle_completion(self, tlp: Tlp) -> None:
        if tlp.tag in self._pending_nonposted:
            event = self._pending_nonposted.pop(tlp.tag)
            if tlp.kind == TlpKind.COMPLETION_DATA:
                event.trigger(tlp.data)
            elif tlp.completion_status is CompletionStatus.SUCCESS:
                event.trigger(None)
            else:
                event.trigger(tlp.completion_status)
            return
        state = self._pending.get(tlp.tag)
        if state is None:
            raise RuntimeError(f"root port {self.port_index}: unknown completion tag {tlp.tag}")
        if tlp.kind == TlpKind.COMPLETION:
            del self._pending[tlp.tag]
            state.event.trigger(tlp.completion_status)
            return
        state.chunks.append(tlp.data)
        state.received += len(tlp.data)
        if tlp.byte_count == len(tlp.data):
            del self._pending[tlp.tag]
        if state.received >= state.expected:
            if len(state.chunks) == 1:
                state.event.trigger(state.chunks[0])
            else:
                state.event.trigger(b"".join(state.chunks))

    # -- downstream (host-initiated) ----------------------------------------------

    def mmio_read(self, addr: int, length: int) -> Event:
        """Non-posted read toward the endpoint; fires with the data."""
        req = memory_read(addr, length, requester="host")
        event = Event(name=f"{self.path}.mmio_read")
        state = _HostPendingRead(expected=length, event=event)
        self._pending[req.tag] = state
        self.link.post_downstream(req)
        return event

    def mmio_write(self, addr: int, data: bytes) -> None:
        """Posted write toward the endpoint (returns immediately)."""
        self.link.post_downstream(memory_write(addr, data, requester="host"))

    def cfg_read(self, offset: int, length: int = 4) -> Event:
        """Config read (always a 4-byte wire transaction; sub-dword
        values are extracted from the containing dword, as the kernel's
        ``pci_read_config_*`` helpers do).

        An empty slot (no endpoint on the link) completes with all-ones
        after a short delay, the master-abort behaviour enumeration
        relies on to detect device absence."""
        if not self.link.endpoint_attached:
            result = Event(name=f"{self.path}.cfg_read.empty")
            self.sim.schedule(self.link.config.propagation_time, result.trigger,
                              b"\xff" * length)
            return result
        aligned = offset & ~3
        req = config_read(aligned, requester="host")
        event = Event(name=f"{self.path}.cfg_read")
        result = Event(name=f"{self.path}.cfg_read.value")
        self._pending_nonposted[req.tag] = event
        shift = offset - aligned

        def _extract(ev: Event) -> None:
            dword: bytes = ev.value
            result.trigger(dword[shift : shift + length])

        event.on_trigger(_extract)
        self.link.post_downstream(req)
        return result

    def cfg_write(self, offset: int, data: bytes) -> Event:
        """Config write; fires when the completion returns (non-posted)."""
        if len(data) not in (1, 2, 4):
            raise ValueError(f"config write must be 1/2/4 bytes, got {len(data)}")
        aligned = offset & ~3
        if len(data) == 4 and offset == aligned:
            req = config_write(aligned, data, requester="host")
            event = Event(name=f"{self.path}.cfg_write")
            self._pending_nonposted[req.tag] = event
            self.link.post_downstream(req)
            return event
        # Read-modify-write for sub-dword config writes.
        result = Event(name=f"{self.path}.cfg_write")

        def _merge(ev: Event) -> None:
            dword = bytearray(ev.value)
            shift = offset - aligned
            dword[shift : shift + len(data)] = data
            req = config_write(aligned, bytes(dword), requester="host")
            self._pending_nonposted[req.tag] = result
            self.link.post_downstream(req)

        self.cfg_read(aligned, 4).on_trigger(_merge)
        return result


class RootComplex(Component):
    """Host-side root complex with memory, MSI routing and MMIO routing."""

    def __init__(
        self,
        sim: "Simulator",
        host_memory: Optional[PhysicalMemory] = None,
        name: str = "root-complex",
        parent: Optional[Component] = None,
        memory_read_latency_ns: float = 75.0,
        tracer=None,
    ) -> None:
        super().__init__(sim, name, parent=parent, tracer=tracer)
        self.host_memory = host_memory if host_memory is not None else PhysicalMemory()
        self.memory_read_latency: SimTime = ns(memory_read_latency_ns)
        self.ports: List[RootPort] = []
        self._msi_handler: Optional[MsiHandler] = None
        self._windows: List[Tuple[int, int, RootPort]] = []  # (base, size, port)

    def create_port(self, link_config: Optional[LinkConfig] = None) -> Tuple[RootPort, PcieLink]:
        """Create a downstream port and its link; the endpoint attaches
        to the returned link."""
        config = link_config if link_config is not None else LinkConfig()
        link = PcieLink(self.sim, config, name=f"link{len(self.ports)}", parent=self)
        port = RootPort(self.sim, self, link, port_index=len(self.ports), parent=self)
        self.ports.append(port)
        return port, link

    # -- MSI --------------------------------------------------------------------

    def set_msi_handler(self, handler: MsiHandler) -> None:
        """Install the interrupt-controller callback for MSI writes."""
        self._msi_handler = handler

    def deliver_msi(self, address: int, data: int) -> None:
        if self._msi_handler is None:
            raise RuntimeError("MSI received but no interrupt controller attached")
        self._msi_handler(address, data)

    # -- MMIO routing -----------------------------------------------------------------

    def register_window(self, base: int, size: int, port: RootPort) -> None:
        """Record that [base, base+size) routes to *port* (enumeration
        calls this after assigning a BAR)."""
        for wbase, wsize, _ in self._windows:
            if base < wbase + wsize and wbase < base + size:
                raise ValueError(f"window [{base:#x},{base + size:#x}) overlaps existing")
        self._windows.append((base, size, port))

    def _port_for(self, addr: int) -> RootPort:
        for base, size, port in self._windows:
            if base <= addr < base + size:
                return port
        raise RuntimeError(f"no MMIO window contains address {addr:#x}")

    def mmio_read(self, addr: int, length: int) -> Event:
        return self._port_for(addr).mmio_read(addr, length)

    def mmio_write(self, addr: int, data: bytes) -> None:
        self._port_for(addr).mmio_write(addr, data)
