"""PCI bus enumeration.

Walks each root port as the kernel's PCI core does at boot: read the
vendor/device ID, size and assign every BAR out of the host MMIO window,
enable memory decoding and bus mastering, then walk the capability list.
The result is a :class:`DiscoveredFunction` that drivers bind against --
the simulation equivalent of a ``struct pci_dev``.

Enumeration runs as a simulation process because each config access is a
real non-posted round trip over the link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.mem.layout import align_up
from repro.pcie.config_space import (
    BAR0_OFFSET,
    BAR_TYPE_64BIT,
    CAPABILITIES_POINTER_OFFSET,
    COMMAND_BUS_MASTER,
    COMMAND_MEMORY_SPACE,
    COMMAND_OFFSET,
    DEVICE_ID_OFFSET,
    NUM_BARS,
    STATUS_CAPABILITIES_LIST,
    STATUS_OFFSET,
    VENDOR_ID_OFFSET,
)
from repro.pcie.root_complex import MMIO_WINDOW_BASE, MMIO_WINDOW_SIZE, RootComplex, RootPort


@dataclass
class DiscoveredBar:
    """An assigned BAR as seen by drivers."""

    index: int
    address: int
    size: int
    is_64bit: bool
    prefetchable: bool


@dataclass
class DiscoveredCapability:
    """A capability list entry."""

    cap_id: int
    offset: int


@dataclass
class DiscoveredFunction:
    """Result of enumerating one endpoint function."""

    port: RootPort
    vendor_id: int
    device_id: int
    bars: Dict[int, DiscoveredBar] = field(default_factory=dict)
    capabilities: List[DiscoveredCapability] = field(default_factory=list)

    def find_capability(self, cap_id: int) -> Optional[DiscoveredCapability]:
        for cap in self.capabilities:
            if cap.cap_id == cap_id:
                return cap
        return None

    def find_capabilities(self, cap_id: int) -> List[DiscoveredCapability]:
        return [cap for cap in self.capabilities if cap.cap_id == cap_id]

    def __repr__(self) -> str:
        return (
            f"<DiscoveredFunction {self.vendor_id:04x}:{self.device_id:04x} "
            f"bars={sorted(self.bars)} caps={len(self.capabilities)}>"
        )


class BarAllocator:
    """Assigns BAR addresses from the host MMIO window, naturally
    aligned as the spec requires."""

    def __init__(self, base: int = MMIO_WINDOW_BASE, size: int = MMIO_WINDOW_SIZE) -> None:
        self.base = base
        self.limit = base + size
        self._next = base

    def alloc(self, size: int) -> int:
        addr = align_up(self._next, size)
        if addr + size > self.limit:
            raise RuntimeError(f"MMIO window exhausted allocating {size:#x} bytes")
        self._next = addr + size
        return addr


def enumerate_function(
    rc: RootComplex,
    port: RootPort,
    allocator: BarAllocator,
) -> Generator:
    """Process body: enumerate the endpoint behind *port*.

    Yields simulation events; returns a :class:`DiscoveredFunction`.
    """
    vendor = int.from_bytes((yield port.cfg_read(VENDOR_ID_OFFSET, 2)), "little")
    if vendor == 0xFFFF:
        return None  # no device present
    device = int.from_bytes((yield port.cfg_read(DEVICE_ID_OFFSET, 2)), "little")
    func = DiscoveredFunction(port=port, vendor_id=vendor, device_id=device)

    # -- size and assign BARs -------------------------------------------------
    index = 0
    while index < NUM_BARS:
        bar_offset = BAR0_OFFSET + 4 * index
        original = int.from_bytes((yield port.cfg_read(bar_offset, 4)), "little")
        yield port.cfg_write(bar_offset, b"\xff\xff\xff\xff")
        sized = int.from_bytes((yield port.cfg_read(bar_offset, 4)), "little")
        if sized == 0:
            index += 1
            continue
        is_64bit = bool(original & BAR_TYPE_64BIT)
        prefetch = bool(original & 0x8)
        size_mask = sized & 0xFFFF_FFF0
        if is_64bit:
            upper_offset = bar_offset + 4
            yield port.cfg_write(upper_offset, b"\xff\xff\xff\xff")
            upper_sized = int.from_bytes((yield port.cfg_read(upper_offset, 4)), "little")
            full_mask = (upper_sized << 32) | size_mask
            size = (~full_mask + 1) & ((1 << 64) - 1)
        else:
            size = (~size_mask + 1) & 0xFFFF_FFFF
        address = allocator.alloc(size)
        yield port.cfg_write(bar_offset, (address & 0xFFFF_FFF0).to_bytes(4, "little"))
        if is_64bit:
            yield port.cfg_write(bar_offset + 4, (address >> 32).to_bytes(4, "little"))
        func.bars[index] = DiscoveredBar(
            index=index, address=address, size=size, is_64bit=is_64bit, prefetchable=prefetch
        )
        rc.register_window(address, size, port)
        index += 2 if is_64bit else 1

    # -- enable decoding ------------------------------------------------------
    command = int.from_bytes((yield port.cfg_read(COMMAND_OFFSET, 2)), "little")
    command |= COMMAND_MEMORY_SPACE | COMMAND_BUS_MASTER
    yield port.cfg_write(COMMAND_OFFSET, command.to_bytes(2, "little"))

    # -- capability walk --------------------------------------------------------
    status = int.from_bytes((yield port.cfg_read(STATUS_OFFSET, 2)), "little")
    if status & STATUS_CAPABILITIES_LIST:
        offset = int.from_bytes((yield port.cfg_read(CAPABILITIES_POINTER_OFFSET, 1)), "little")
        seen = set()
        while offset:
            if offset in seen:
                raise RuntimeError(f"capability loop at {offset:#x} during enumeration")
            seen.add(offset)
            cap_id = int.from_bytes((yield port.cfg_read(offset, 1)), "little")
            func.capabilities.append(DiscoveredCapability(cap_id=cap_id, offset=offset))
            offset = int.from_bytes((yield port.cfg_read(offset + 1, 1)), "little")

    return func


def enumerate_all(rc: RootComplex) -> Generator:
    """Process body: enumerate every port; returns the list of
    discovered functions (device-less ports are skipped)."""
    allocator = BarAllocator()
    found: List[DiscoveredFunction] = []
    for port in rc.ports:
        func = yield rc.spawn(enumerate_function(rc, port, allocator), name="enum")
        if func is not None:
            found.append(func)
    return found
