"""PCIe endpoint base class.

A :class:`PcieEndpoint` owns a config space, BAR-mapped regions, and an
optional MSI-X block; it terminates downstream TLPs (config and memory
requests) and offers its internal logic a DMA API toward host memory
(`dma_read`/`dma_write`) plus `raise_msix`.

Concrete devices (the XDMA IP model, and through it the VirtIO FPGA
device) subclass or compose this with their register blocks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.mem.region import MemoryAccessError, MemoryRegion
from repro.pcie.config_space import BarDefinition, ConfigSpace
from repro.pcie.link import PcieLink
from repro.pcie.msi import MsixCapability, MsixTable
from repro.pcie.tlp import (
    CompletionStatus,
    Tlp,
    TlpKind,
    completion_error,
    completion_with_data,
    memory_write,
    segment_read,
    segment_write,
    split_completion,
)
from repro.sim.component import Component
from repro.sim.event import Event
from repro.sim.time import ns

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class _PendingRead:
    """Reassembly state for one outstanding DMA read request."""

    __slots__ = ("expected", "chunks", "received", "event", "base_addr")

    def __init__(self, expected: int, event: Event, base_addr: int) -> None:
        self.expected = expected
        self.chunks: List[bytes] = []
        self.received = 0
        self.event = event
        self.base_addr = base_addr


class PcieEndpoint(Component):
    """Single-function PCIe endpoint attached to one link.

    Parameters
    ----------
    completer_latency_ns:
        Internal pipeline latency between receiving a non-posted request
        and emitting its completion (BAR access paths in the PCIe hard
        block; PG195-class IPs sit around 100-200 ns for register reads).
    """

    def __init__(
        self,
        sim: "Simulator",
        link: PcieLink,
        config: ConfigSpace,
        name: str = "endpoint",
        parent: Optional[Component] = None,
        completer_latency_ns: float = 120.0,
    ) -> None:
        super().__init__(sim, name, parent=parent)
        self.link = link
        self.config = config
        self.completer_latency = ns(completer_latency_ns)
        self._bar_regions: Dict[int, MemoryRegion] = {}
        self._pending_reads: Dict[int, _PendingRead] = {}
        self.msix: Optional[MsixCapability] = None
        link.attach_endpoint_rx(self._receive)
        self._stat_dma_read_tlps = 0
        self._stat_dma_write_tlps = 0
        self._dma_read_event_name = f"{self.path}.dma_read"
        self._stat_msix_raised = 0
        # Decoded-BAR cache, keyed on the config space's generation
        # counter: (base, end, region) tuples for each programmed BAR,
        # plus the enable bits, so the per-TLP paths skip the
        # dict-walk + register decode.  Rebuilt whenever enumeration
        # reprograms a BAR or flips command-register bits.
        self._bar_cache: list[tuple[int, int, MemoryRegion]] = []
        self._bar_cache_gen = -1
        self._mem_enabled = False
        self._bus_master = False
        # ``link.upstream.post``, bound lazily on first use (the
        # direction exists once the root port / switch side attaches its
        # receive callback, which always precedes traffic).
        self._post_up = None

    # -- construction -----------------------------------------------------------

    def attach_bar(self, index: int, region: MemoryRegion, prefetchable: bool = False,
                   is_64bit: bool = False) -> None:
        """Define a BAR of the region's (power-of-two padded) size and
        back it with *region*."""
        size = 1 << max(4, (region.size - 1).bit_length())
        self.config.define_bar(
            BarDefinition(index=index, size=size, prefetchable=prefetchable, is_64bit=is_64bit)
        )
        self._bar_regions[index] = region

    def enable_msix(self, num_vectors: int, bar_index: int) -> MsixCapability:
        """Add an MSI-X capability with its table in a dedicated BAR."""
        table = MsixTable(num_vectors, name=f"{self.name}.msix")
        self.attach_bar(bar_index, table)
        self.msix = MsixCapability(self.config, table, table_bar=bar_index)
        self.msix.on_refire(self.raise_msix)
        return self.msix

    def bar_region(self, index: int) -> MemoryRegion:
        return self._bar_regions[index]

    # -- downstream TLP handling ----------------------------------------------------

    def _receive(self, tlp: Tlp) -> None:
        # Dispatch ordered by steady-state frequency (DMA-read
        # completions, then MMIO traffic, then enumeration-time config),
        # with identity compares: TlpKind members are singletons.
        kind = tlp.kind
        if kind is TlpKind.COMPLETION_DATA or kind is TlpKind.COMPLETION:
            self._handle_completion(tlp)
        elif kind is TlpKind.MEM_WRITE:
            self._handle_mem_write(tlp)
        elif kind is TlpKind.MEM_READ:
            self._handle_mem_read(tlp)
        elif kind is TlpKind.CONFIG_READ:
            self._handle_config_read(tlp)
        elif kind is TlpKind.CONFIG_WRITE:
            self._handle_config_write(tlp)
        else:  # pragma: no cover - enum is exhaustive
            raise RuntimeError(f"endpoint {self.name!r}: unexpected TLP {tlp!r}")


    def _handle_config_read(self, tlp: Tlp) -> None:
        data = self.config.read(tlp.addr, 4)
        self.trace("cfg-read", offset=tlp.addr)
        self.sim.schedule(
            self.completer_latency,
            self.link.post_upstream,
            completion_with_data(tlp, data),
        )

    def _handle_config_write(self, tlp: Tlp) -> None:
        self.config.write(tlp.addr, tlp.data)
        self.trace("cfg-write", offset=tlp.addr, value=int.from_bytes(tlp.data, "little"))
        if self.msix is not None:
            lo, hi = self.msix.control_range()
            if tlp.addr < hi and tlp.addr + len(tlp.data) > lo:
                self.msix.sync_from_config()
        # Non-posted: completion without data.
        done = Tlp(kind=TlpKind.COMPLETION, requester=tlp.requester, tag=tlp.tag)
        self.sim.schedule(self.completer_latency, self.link.post_upstream, done)

    def _refresh_config_cache(self) -> None:
        config = self.config
        self._bar_cache = [
            (base, base + region.size, region)
            for index, region in self._bar_regions.items()
            if (base := config.bar_address(index))
        ]
        self._mem_enabled = config.memory_enabled
        self._bus_master = config.bus_master_enabled
        self._bar_cache_gen = config.generation

    def _locate_bar(self, addr: int, length: int) -> Optional[tuple[MemoryRegion, int]]:
        if self._bar_cache_gen != self.config.generation:
            self._refresh_config_cache()
        end = addr + length
        for base, bar_end, region in self._bar_cache:
            if base <= addr and end <= bar_end:
                return region, addr - base
        return None

    def _handle_mem_read(self, tlp: Tlp) -> None:
        if self._bar_cache_gen != self.config.generation:
            self._refresh_config_cache()
        if not self._mem_enabled:
            self.link.post_upstream(completion_error(tlp, CompletionStatus.UNSUPPORTED_REQUEST))
            return
        located = self._locate_bar(tlp.addr, tlp.length)
        if located is None:
            self.trace("mem-read-ur", addr=tlp.addr)
            self.link.post_upstream(completion_error(tlp, CompletionStatus.UNSUPPORTED_REQUEST))
            return
        region, offset = located
        try:
            data = region.read(offset, tlp.length)
        except MemoryAccessError:
            self.link.post_upstream(completion_error(tlp, CompletionStatus.COMPLETER_ABORT))
            return
        if self.tracer.enabled:
            self.trace("mem-read", addr=tlp.addr, length=tlp.length)
        post = self._post_up
        if post is None:
            post = self._post_up = self.link.upstream.post
        self.sim.schedule_many(
            self.completer_latency,
            post,
            [(cpl,) for cpl in split_completion(
                tlp, data, rcb=self.link.config.read_completion_boundary
            )],
        )

    def _handle_mem_write(self, tlp: Tlp) -> None:
        if self._bar_cache_gen != self.config.generation:
            self._refresh_config_cache()
        if not self._mem_enabled:
            self.trace("mem-write-dropped", addr=tlp.addr)
            return
        located = self._locate_bar(tlp.addr, tlp.length)
        if located is None:
            self.trace("mem-write-ur", addr=tlp.addr)
            return  # posted: silently dropped (device would log an error)
        region, offset = located
        region.write(offset, tlp.data)
        if self.tracer.enabled:
            self.trace("mem-write", addr=tlp.addr, length=tlp.length)

    # -- DMA master API (device internal logic) ------------------------------------

    def dma_write(self, addr: int, data: bytes) -> Event:
        """Write *data* to host memory; the event fires when the final
        MWr TLP is delivered at the root complex.

        Memory writes are posted on the wire, but the engine issuing
        them stalls on flow-control credits until the link has accepted
        the data, and any subsequent TLP (used-ring update, MSI-X) is
        ordered behind the payload by the link FIFO -- so "last TLP
        delivered" is the faithful notion of done for a DMA engine.
        """
        if self._bar_cache_gen != self.config.generation:
            self._refresh_config_cache()
        if not self._bus_master:
            raise RuntimeError(f"{self.name!r}: DMA write with bus mastering disabled")
        tlps = segment_write(addr, data, self.link.config.max_payload, requester=self.path)
        self._stat_dma_write_tlps += len(tlps)
        # Write-combined burst: one delivery event for the whole transfer
        # (fires at the last TLP, which is all callers ever waited on).
        return self.link.upstream.send_many(tlps)

    def dma_read(self, addr: int, length: int) -> Event:
        """Read *length* bytes from host memory; event fires with the
        reassembled bytes when all completions have arrived."""
        if self._bar_cache_gen != self.config.generation:
            self._refresh_config_cache()
        if not self._bus_master:
            raise RuntimeError(f"{self.name!r}: DMA read with bus mastering disabled")
        done = Event(name=self._dma_read_event_name)
        requests = segment_read(addr, length, self.link.config.max_read_request,
                                requester=self.path)
        self._stat_dma_read_tlps += len(requests)
        state = _PendingRead(expected=length, event=done, base_addr=addr)
        post = self._post_up
        if post is None:
            post = self._post_up = self.link.upstream.post
        pending = self._pending_reads
        for req in requests:
            pending[req.tag] = state
            post(req)
        return done

    def _handle_completion(self, tlp: Tlp) -> None:
        state = self._pending_reads.get(tlp.tag)
        if state is None:
            raise RuntimeError(f"{self.name!r}: completion with unknown tag {tlp.tag}")
        if tlp.kind is TlpKind.COMPLETION:
            del self._pending_reads[tlp.tag]
            raise RuntimeError(
                f"{self.name!r}: DMA read failed with {tlp.completion_status.name}"
            )
        state.chunks.append(tlp.data)
        state.received += len(tlp.data)
        if tlp.byte_count == len(tlp.data):
            # Final split of this request.
            del self._pending_reads[tlp.tag]
        if state.received >= state.expected:
            # Chunks may be views of the completer's immutable read
            # snapshot; a single-chunk read (descriptor fetches, small
            # payloads) passes straight through, multi-chunk reassembly
            # joins into fresh bytes.
            if len(state.chunks) == 1:
                state.event.trigger(state.chunks[0])
            else:
                state.event.trigger(b"".join(state.chunks))

    # -- interrupts ---------------------------------------------------------------

    def raise_msix(self, vector: int) -> None:
        """Fire an MSI-X vector (posted MWr to the vector's address)."""
        if self.msix is None:
            raise RuntimeError(f"{self.name!r}: MSI-X not configured")
        message = self.msix.table.compose(vector)
        if message is None:
            self.trace("msix-suppressed", vector=vector)
            return
        self._stat_msix_raised += 1
        self.trace("msix-raise", vector=vector, addr=message.address)
        tlp = memory_write(
            message.address, message.data.to_bytes(4, "little"), requester=self.path
        )
        tlp.detail["msix_vector"] = vector
        self.link.post_upstream(tlp)

    # -- statistics ------------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "dma_read_tlps": self._stat_dma_read_tlps,
            "dma_write_tlps": self._stat_dma_write_tlps,
            "msix_raised": self._stat_msix_raised,
        }
