"""Transaction Layer Packets.

The simulator works at the transaction layer: requesters emit
:class:`Tlp` objects; the link model charges serialization/propagation
time; completers produce completion TLPs.  Physical- and data-link-layer
mechanics (8b/10b symbols, DLLPs, ACK/NAK replay) are folded into the
per-TLP overhead bytes and the link's efficiency factor -- they are
invisible to device drivers, which is the layer the paper measures.

Wire-size accounting per TLP (PCIe Gen1/2 framing):

* 1 B STP + 2 B sequence number before the header,
* 12 B header (3 DW, 32-bit addressing) or 16 B (4 DW, 64-bit),
* payload (MWr/CplD only),
* 4 B LCRC + 1 B END.

giving ``DLL_OVERHEAD_BYTES = 8`` on top of header+payload.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, List, Optional, Tuple

#: Link-layer framing bytes added to every TLP (STP+seq+LCRC+END).
DLL_OVERHEAD_BYTES = 8
#: 3-DW header (memory requests with 32-bit addresses, completions, config).
HEADER_3DW_BYTES = 12
#: 4-DW header (memory requests with 64-bit addresses).
HEADER_4DW_BYTES = 16

#: Addresses at or above 4 GiB need the 4-DW header format.
ADDR_32BIT_LIMIT = 1 << 32


class TlpKind(enum.Enum):
    """Transaction types used by the models."""

    MEM_READ = "MRd"
    MEM_WRITE = "MWr"
    COMPLETION = "Cpl"
    COMPLETION_DATA = "CplD"
    CONFIG_READ = "CfgRd0"
    CONFIG_WRITE = "CfgWr0"


class CompletionStatus(enum.Enum):
    """Completion status field (subset used by the models)."""

    SUCCESS = 0b000
    UNSUPPORTED_REQUEST = 0b001
    COMPLETER_ABORT = 0b100


_tag_counter = itertools.count(1)


def next_tag() -> int:
    """Allocate a transaction tag (8-bit wrap, uniqueness is per-flight
    and the models never keep 256 reads outstanding)."""
    return next(_tag_counter) & 0xFF


@dataclass(slots=True)
class Tlp:
    """One transaction-layer packet.

    The class carries ``__slots__``: millions of TLPs are constructed
    per full-fidelity run, and slotted instances are both smaller and
    faster to build than per-instance ``__dict__`` objects.  Ad-hoc
    annotations belong in :attr:`detail`.

    Attributes
    ----------
    kind:
        Transaction type.
    addr:
        Target address (memory requests) or register number (config).
    length:
        Bytes requested/carried.  Zero only for Cpl (no data) and
        zero-length reads (flush semantics, unused here).
    data:
        Payload for MWr / CplD / CfgWr0.
    requester:
        Identifier of the issuing agent (diagnostics and completion
        routing; the simulator routes completions via Python callbacks,
        but the field mirrors the wire protocol).
    tag:
        Transaction tag linking completions to requests.
    completion_status:
        For completions only.
    byte_count / lower_address:
        Completion-split bookkeeping, mirroring the spec fields so tests
        can verify Read Completion Boundary behaviour.
    """

    kind: TlpKind
    addr: int = 0
    length: int = 0
    #: Payload for MWr / CplD / CfgWr0.  ``bytes`` or any read-only
    #: buffer (``memoryview``): the zero-copy data plane threads views of
    #: pooled/staged buffers here instead of materializing a copy per hop.
    data: bytes = b""
    requester: str = ""
    tag: int = 0
    completion_status: CompletionStatus = CompletionStatus.SUCCESS
    byte_count: int = 0
    lower_address: int = 0
    detail: dict = field(default_factory=dict)
    #: Cached link footprint, fixed at construction (payload length never
    #: changes after that -- fault corruption flips bits, not sizes).
    wire_bytes: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        # Runs once per TLP -- millions per full-fidelity run -- so the
        # checks use identity comparisons against the enum members and
        # the header size is computed inline rather than through the
        # ``header_bytes`` property.
        kind = self.kind
        data_len = len(self.data)
        if kind is TlpKind.MEM_WRITE or kind is TlpKind.COMPLETION_DATA or kind is TlpKind.CONFIG_WRITE:
            if data_len != self.length:
                raise ValueError(
                    f"{kind.value}: data length {data_len} != length {self.length}"
                )
        elif kind is TlpKind.MEM_READ or kind is TlpKind.CONFIG_READ:
            if data_len:
                raise ValueError(f"{kind.value} TLP must not carry data")
            if self.length <= 0:
                raise ValueError(f"{kind.value} TLP must request at least 1 byte")
        if self.addr < 0:
            raise ValueError(f"negative address {self.addr:#x}")
        if (
            (kind is TlpKind.MEM_READ or kind is TlpKind.MEM_WRITE)
            and self.addr + max(self.length, 1) > ADDR_32BIT_LIMIT
        ):
            header = HEADER_4DW_BYTES
        else:
            header = HEADER_3DW_BYTES
        self.wire_bytes = DLL_OVERHEAD_BYTES + header + data_len

    @property
    def is_posted(self) -> bool:
        """Posted transactions receive no completion (memory writes)."""
        return self.kind == TlpKind.MEM_WRITE

    @property
    def header_bytes(self) -> int:
        """Header size: 64-bit memory addresses need the 4-DW format."""
        if (
            self.kind in (TlpKind.MEM_READ, TlpKind.MEM_WRITE)
            and self.addr + max(self.length, 1) > ADDR_32BIT_LIMIT
        ):
            return HEADER_4DW_BYTES
        return HEADER_3DW_BYTES

    @property
    def payload_bytes(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        core = f"{self.kind.value} addr={self.addr:#x} len={self.length}"
        if self.kind in (TlpKind.COMPLETION, TlpKind.COMPLETION_DATA):
            core += f" status={self.completion_status.name} tag={self.tag}"
        return f"<Tlp {core}>"


# -- constructors --------------------------------------------------------------
#
# The three constructors below build every DMA/MMIO TLP in the hot path
# (memory requests and their completion splits) via ``object.__new__``,
# skipping the dataclass ``__init__``/``__post_init__``.  Their arguments
# are produced by the segmentation helpers and completers, which already
# satisfy the invariants ``__post_init__`` checks (lengths match payloads,
# addresses are non-negative); ad-hoc / external construction keeps going
# through ``Tlp(...)`` with full validation.

_tlp_new = object.__new__
_MEM_READ = TlpKind.MEM_READ
_MEM_WRITE = TlpKind.MEM_WRITE
_COMPLETION_DATA = TlpKind.COMPLETION_DATA
_SUCCESS = CompletionStatus.SUCCESS
#: 3-DW wire footprint with no payload: DLL framing + 12 B header.
_WIRE_3DW = DLL_OVERHEAD_BYTES + HEADER_3DW_BYTES
_WIRE_4DW = DLL_OVERHEAD_BYTES + HEADER_4DW_BYTES


def memory_read(addr: int, length: int, requester: str = "", tag: Optional[int] = None) -> Tlp:
    """An MRd request."""
    if length <= 0:
        raise ValueError("MRd TLP must request at least 1 byte")
    t = _tlp_new(Tlp)
    t.kind = _MEM_READ
    t.addr = addr
    t.length = length
    t.data = b""
    t.requester = requester
    t.tag = next_tag() if tag is None else tag
    t.completion_status = _SUCCESS
    t.byte_count = 0
    t.lower_address = 0
    t.detail = {}
    t.wire_bytes = _WIRE_4DW if addr + length > ADDR_32BIT_LIMIT else _WIRE_3DW
    return t


def memory_write(addr: int, data: bytes, requester: str = "") -> Tlp:
    """A posted MWr request.

    Zero-copy: the payload buffer is carried by reference.  Callers that
    may mutate the source after issuing the write must pass a snapshot.
    """
    t = _tlp_new(Tlp)
    length = len(data)
    t.kind = _MEM_WRITE
    t.addr = addr
    t.length = length
    t.data = data
    t.requester = requester
    t.tag = 0
    t.completion_status = _SUCCESS
    t.byte_count = 0
    t.lower_address = 0
    t.detail = {}
    if addr + (length or 1) > ADDR_32BIT_LIMIT:
        t.wire_bytes = _WIRE_4DW + length
    else:
        t.wire_bytes = _WIRE_3DW + length
    return t


def completion_with_data(
    request: Tlp,
    data: bytes,
    byte_count: Optional[int] = None,
    lower_address: int = 0,
) -> Tlp:
    """A CplD answering *request* (possibly one split of several).

    Zero-copy: the payload buffer is carried by reference (completers
    pass views of an immutable read snapshot).
    """
    t = _tlp_new(Tlp)
    length = len(data)
    t.kind = _COMPLETION_DATA
    t.addr = 0
    t.length = length
    t.data = data
    t.requester = request.requester
    t.tag = request.tag
    t.completion_status = _SUCCESS
    t.byte_count = length if byte_count is None else byte_count
    t.lower_address = lower_address
    t.detail = {}
    # Completions always use the 3-DW header format.
    t.wire_bytes = _WIRE_3DW + length
    return t


def completion_error(request: Tlp, status: CompletionStatus) -> Tlp:
    """A no-data completion reporting an error for *request*."""
    return Tlp(
        kind=TlpKind.COMPLETION,
        requester=request.requester,
        tag=request.tag,
        completion_status=status,
    )


def config_read(register: int, requester: str = "") -> Tlp:
    """A CfgRd0 of one 32-bit register (register = byte offset / 4)."""
    return Tlp(
        kind=TlpKind.CONFIG_READ, addr=register, length=4, requester=requester, tag=next_tag()
    )


def config_write(register: int, data: bytes, requester: str = "") -> Tlp:
    """A CfgWr0 of one 32-bit register."""
    if len(data) != 4:
        raise ValueError(f"config writes are 4 bytes, got {len(data)}")
    return Tlp(
        kind=TlpKind.CONFIG_WRITE,
        addr=register,
        length=4,
        data=bytes(data),
        requester=requester,
        tag=next_tag(),
    )


# -- segmentation helpers --------------------------------------------------------


@lru_cache(maxsize=8192)
def segmentation_plan(page_offset: int, length: int, limit: int) -> Tuple[Tuple[int, int], ...]:
    """The ``(relative offset, chunk length)`` split of a transfer.

    The split depends only on the start address *within* its 4 KiB page,
    the transfer length, and the per-TLP limit (Max_Payload_Size for
    writes, Max_Read_Request_Size for reads) -- a tiny key space in
    practice (the experiments sweep a handful of payload sizes against
    one link configuration), so the plan is memoized: the steady-state
    cost of segmenting a transfer is one cache lookup instead of a
    Python loop per TLP.
    """
    if limit <= 0:
        raise ValueError(f"segmentation limit must be positive, got {limit}")
    plan = []
    pos = 0
    while pos < length:
        boundary = 4096 - ((page_offset + pos) % 4096)
        chunk = min(length - pos, limit, boundary)
        plan.append((pos, chunk))
        pos += chunk
    return tuple(plan)


def segment_write(
    addr: int, data: bytes, max_payload: int, requester: str = ""
) -> List[Tlp]:
    """Split a write into MWr TLPs obeying Max_Payload_Size and 4 KiB
    page-boundary rules."""
    if max_payload <= 0:
        raise ValueError(f"max_payload must be positive, got {max_payload}")
    plan = segmentation_plan(addr % 4096, len(data), max_payload)
    if len(plan) == 1:
        # Single-TLP fast path: no slicing at all.
        return [memory_write(addr, data, requester=requester)]
    src = memoryview(data) if isinstance(data, (bytes, bytearray)) else data
    return [
        memory_write(addr + pos, src[pos : pos + chunk], requester=requester)
        for pos, chunk in plan
    ]


def segment_read(
    addr: int, length: int, max_read_request: int, requester: str = ""
) -> List[Tlp]:
    """Split a read into MRd TLPs obeying Max_Read_Request_Size and the
    4 KiB boundary rule."""
    if max_read_request <= 0:
        raise ValueError(f"max_read_request must be positive, got {max_read_request}")
    return [
        memory_read(addr + pos, chunk, requester=requester)
        for pos, chunk in segmentation_plan(addr % 4096, length, max_read_request)
    ]


def split_completion(
    request: Tlp, data: bytes, rcb: int = 64
) -> Iterator[Tlp]:
    """Yield CplD TLPs for *data*, split at the Read Completion Boundary.

    The first completion runs from the request address up to the next RCB
    boundary; subsequent completions are full RCB chunks.  ``byte_count``
    counts down the bytes remaining including the current completion, per
    spec, so receivers can detect the final split.
    """
    if rcb <= 0 or rcb & (rcb - 1):
        raise ValueError(f"rcb must be a power of two, got {rcb}")
    total = len(data)
    if total != request.length:
        raise ValueError(f"completion data {total}B != requested {request.length}B")
    pos = 0
    addr = request.addr
    if 0 < total <= rcb - (addr % rcb):
        # Single-completion fast path (the common case at RCB=64 only for
        # small reads, but it skips the view machinery entirely).
        yield completion_with_data(request, data, byte_count=total, lower_address=addr & 0x7F)
        return
    src = memoryview(data) if isinstance(data, (bytes, bytearray)) else data
    while pos < total:
        boundary = rcb - (addr % rcb)
        chunk = min(total - pos, boundary)
        yield completion_with_data(
            request,
            src[pos : pos + chunk],
            byte_count=total - pos,
            lower_address=addr & 0x7F,
        )
        pos += chunk
        addr += chunk
