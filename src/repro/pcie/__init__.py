"""Transaction-level PCIe substrate.

* :mod:`repro.pcie.tlp` -- transaction-layer packets, segmentation,
  completion splitting.
* :mod:`repro.pcie.link` -- Gen1/2/3 link timing (the paper's board is
  Gen2 x2, exported as :data:`PAPER_LINK`).
* :mod:`repro.pcie.config_space` -- type-0 config space, BAR sizing,
  capability chains.
* :mod:`repro.pcie.msi` -- MSI-X capability/table/PBA.
* :mod:`repro.pcie.device` -- endpoint base class with BAR decode and a
  DMA-master API.
* :mod:`repro.pcie.root_complex` -- host side: DMA termination, MSI
  routing, MMIO/config initiation.
* :mod:`repro.pcie.enumeration` -- bus walk producing
  :class:`DiscoveredFunction` for drivers to bind.
"""

from repro.pcie.config_space import (
    CAP_ID_MSI,
    CAP_ID_MSIX,
    CAP_ID_PCIE,
    CAP_ID_POWER_MANAGEMENT,
    CAP_ID_VENDOR_SPECIFIC,
    BarDefinition,
    ConfigSpace,
)
from repro.pcie.device import PcieEndpoint
from repro.pcie.enumeration import (
    BarAllocator,
    DiscoveredBar,
    DiscoveredCapability,
    DiscoveredFunction,
    enumerate_all,
    enumerate_function,
)
from repro.pcie.link import PAPER_LINK, LinkConfig, PcieLink
from repro.pcie.msi import MsixCapability, MsixMessage, MsixTable, is_msi_address
from repro.pcie.root_complex import (
    MMIO_WINDOW_BASE,
    MMIO_WINDOW_SIZE,
    RootComplex,
    RootPort,
)
from repro.pcie.tlp import (
    CompletionStatus,
    Tlp,
    TlpKind,
    completion_error,
    completion_with_data,
    config_read,
    config_write,
    memory_read,
    memory_write,
    segment_read,
    segment_write,
    split_completion,
)

__all__ = [
    "BarAllocator",
    "BarDefinition",
    "CAP_ID_MSI",
    "CAP_ID_MSIX",
    "CAP_ID_PCIE",
    "CAP_ID_POWER_MANAGEMENT",
    "CAP_ID_VENDOR_SPECIFIC",
    "CompletionStatus",
    "ConfigSpace",
    "DiscoveredBar",
    "DiscoveredCapability",
    "DiscoveredFunction",
    "LinkConfig",
    "MMIO_WINDOW_BASE",
    "MMIO_WINDOW_SIZE",
    "MsixCapability",
    "MsixMessage",
    "MsixTable",
    "PAPER_LINK",
    "PcieEndpoint",
    "PcieLink",
    "RootComplex",
    "RootPort",
    "Tlp",
    "TlpKind",
    "completion_error",
    "completion_with_data",
    "config_read",
    "config_write",
    "enumerate_all",
    "enumerate_function",
    "is_msi_address",
    "memory_read",
    "memory_write",
    "segment_read",
    "segment_write",
    "split_completion",
]
