"""MSI-X: message-signalled interrupts.

A device raises a vector by posting a memory write to the address in the
corresponding MSI-X table entry; the root complex recognizes the MSI
address window and forwards (vector-data, at delivery time) to the host
interrupt controller.  The table and PBA live in a device BAR, as the
spec requires, so drivers program them through ordinary MMIO.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.mem.layout import read_u32, read_u64, write_u32
from repro.mem.region import MemoryRegion
from repro.pcie.config_space import CAP_ID_MSIX, ConfigSpace

#: x86 MSI address window base (0xFEExxxxx).
MSI_ADDRESS_BASE = 0xFEE0_0000
MSI_ADDRESS_MASK = 0xFFF0_0000

#: Bytes per MSI-X table entry: addr_lo, addr_hi, data, vector control.
MSIX_ENTRY_SIZE = 16
#: Vector-control mask bit.
MSIX_ENTRY_MASKED = 1

# Message-control bits (capability offset +0 after header bytes).
MSIX_CTRL_ENABLE = 1 << 15
MSIX_CTRL_FUNCTION_MASK = 1 << 14


def msix_capability_body(table_size: int, table_bar: int, table_offset: int,
                         pba_bar: int, pba_offset: int) -> bytes:
    """Encode the MSI-X capability body (after the 2 standard bytes).

    Layout: message control (2 B), table offset/BIR (4 B), PBA
    offset/BIR (4 B).
    """
    if not 1 <= table_size <= 2048:
        raise ValueError(f"MSI-X table size must be 1..2048, got {table_size}")
    if table_offset % 8 or pba_offset % 8:
        raise ValueError("MSI-X table/PBA offsets must be 8-byte aligned")
    body = bytearray(10)
    ctrl = (table_size - 1) & 0x7FF
    body[0:2] = ctrl.to_bytes(2, "little")
    body[2:6] = ((table_offset & ~0x7) | (table_bar & 0x7)).to_bytes(4, "little")
    body[6:10] = ((pba_offset & ~0x7) | (pba_bar & 0x7)).to_bytes(4, "little")
    return bytes(body)


@dataclass(frozen=True)
class MsixMessage:
    """A fired MSI-X message: where it was posted and its payload."""

    address: int
    data: int
    vector: int


class MsixTable(MemoryRegion):
    """The MSI-X vector table + PBA as a BAR-mappable region.

    The driver writes entries through MMIO; the device fires vectors via
    :meth:`compose`, which returns the MWr target or records a pending
    bit when masked.
    """

    def __init__(self, num_vectors: int, name: str = "msix") -> None:
        if not 1 <= num_vectors <= 2048:
            raise ValueError(f"num_vectors must be 1..2048, got {num_vectors}")
        table_bytes = num_vectors * MSIX_ENTRY_SIZE
        pba_bytes = ((num_vectors + 63) // 64) * 8
        super().__init__(table_bytes + pba_bytes, name)
        self.num_vectors = num_vectors
        self.pba_offset = table_bytes
        self._data = bytearray(self.size)
        # Entries power up masked, per spec.
        for v in range(num_vectors):
            write_u32(self._data, v * MSIX_ENTRY_SIZE + 12, MSIX_ENTRY_MASKED)
        self.enabled = False
        self.function_masked = False

    # -- MMIO interface (driver side) ------------------------------------------

    def read(self, offset: int, length: int) -> bytes:
        self._check(offset, length)
        return bytes(self._data[offset : offset + length])

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data))
        if offset >= self.pba_offset:
            return  # PBA is read-only to software
        self._data[offset : offset + len(data)] = data

    # -- device interface ---------------------------------------------------------

    def entry(self, vector: int) -> tuple[int, int, bool]:
        """(address, data, masked) for a vector."""
        if not 0 <= vector < self.num_vectors:
            raise IndexError(f"vector {vector} out of range 0..{self.num_vectors - 1}")
        base = vector * MSIX_ENTRY_SIZE
        addr = read_u64(self._data, base)
        data = read_u32(self._data, base + 8)
        masked = bool(read_u32(self._data, base + 12) & MSIX_ENTRY_MASKED)
        return addr, data, masked

    def compose(self, vector: int) -> Optional[MsixMessage]:
        """The message to post for *vector*, or ``None`` if suppressed.

        Suppressed vectors set their pending bit, which fires on unmask
        (handled by :meth:`take_pending`).
        """
        addr, data, masked = self.entry(vector)
        if not self.enabled or self.function_masked or masked or addr == 0:
            self._set_pending(vector)
            return None
        return MsixMessage(address=addr, data=data, vector=vector)

    def _set_pending(self, vector: int) -> None:
        byte_index = self.pba_offset + vector // 8
        self._data[byte_index] |= 1 << (vector % 8)

    def pending(self, vector: int) -> bool:
        byte_index = self.pba_offset + vector // 8
        return bool(self._data[byte_index] & (1 << (vector % 8)))

    def take_pending(self, vector: int) -> bool:
        """Clear and return the pending bit (called on unmask)."""
        was = self.pending(vector)
        if was:
            byte_index = self.pba_offset + vector // 8
            self._data[byte_index] &= ~(1 << (vector % 8)) & 0xFF
        return was


class MsixCapability:
    """Glue between the config-space capability and the table region.

    Watches message-control writes to track enable/function-mask state,
    and re-fires vectors whose pending bits were set while masked.
    """

    def __init__(
        self,
        config: ConfigSpace,
        table: MsixTable,
        table_bar: int,
        table_offset: int = 0,
    ) -> None:
        self.table = table
        self.table_bar = table_bar
        self.table_offset = table_offset
        body = msix_capability_body(
            table_size=table.num_vectors,
            table_bar=table_bar,
            table_offset=table_offset,
            pba_bar=table_bar,
            pba_offset=table_offset + table.pba_offset,
        )
        self.cap_offset = config.add_capability(CAP_ID_MSIX, body)
        self._config = config
        self._refire: List[Callable[[int], None]] = []

    def on_refire(self, callback: Callable[[int], None]) -> None:
        """Called with each vector whose pending bit fires on enable."""
        self._refire.append(callback)

    def sync_from_config(self) -> None:
        """Re-read message control after a config write (the endpoint
        calls this when software touches the capability)."""
        ctrl = int.from_bytes(
            self._config.raw[self.cap_offset + 2 : self.cap_offset + 4], "little"
        )
        was_enabled = self.table.enabled
        self.table.enabled = bool(ctrl & MSIX_CTRL_ENABLE)
        self.table.function_masked = bool(ctrl & MSIX_CTRL_FUNCTION_MASK)
        if self.table.enabled and not self.table.function_masked and not was_enabled:
            for vector in range(self.table.num_vectors):
                if self.table.take_pending(vector):
                    for cb in self._refire:
                        cb(vector)

    def control_range(self) -> tuple[int, int]:
        """Config-space byte range of the message-control word."""
        return self.cap_offset + 2, self.cap_offset + 4


def is_msi_address(addr: int) -> bool:
    """Whether a memory write targets the MSI window."""
    return (addr & MSI_ADDRESS_MASK) == (MSI_ADDRESS_BASE & MSI_ADDRESS_MASK)
