"""PCIe switch model: shared-uplink bandwidth arbitration.

A fleet topology hangs several endpoints off one root port budget; what
physically limits them is the switch's single upstream link.  The model
keeps each endpoint's :class:`~repro.pcie.link.PcieLink` (enumeration,
MMIO routing, and per-endpoint serialization are untouched) and adds a
store-and-forward stage on the *upstream* direction: a TLP first pays
its own downstream link's serialization (endpoint links run in
parallel), then contends for the shared uplink, where the switch grants
transmission round-robin across its downstream ports and pays the
uplink's serialization time per TLP.  Downstream (host -> endpoint)
traffic is not arbitrated: root-complex egress is not the bottleneck in
these experiments, and modeling it would double the event count for no
observable effect.

A link never attached to a switch behaves exactly as before -- the hook
in :class:`~repro.pcie.link.LinkDirection` is a ``None`` check.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.pcie.link import LinkConfig, LinkDirection, PcieLink
from repro.sim.component import Component
from repro.sim.event import Event
from repro.sim.time import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.pcie.tlp import Tlp
    from repro.sim.kernel import Simulator


class PcieSwitch(Component):
    """Round-robin uplink arbiter over the attached downstream ports."""

    def __init__(
        self,
        sim: "Simulator",
        uplink: LinkConfig,
        name: str = "pcie-switch",
        parent: Optional[Component] = None,
    ) -> None:
        super().__init__(sim, name, parent=parent)
        self.config = uplink
        self._ports: List[LinkDirection] = []
        self._queues: List[Deque[Tuple["Tlp", Optional[Event], SimTime]]] = []
        self._busy = False
        self._next_port = 0
        self._ser_cache: Dict[int, SimTime] = {}
        self.tlps_forwarded = 0
        self.bytes_forwarded = 0
        #: port index -> TLPs forwarded from that port (fairness evidence).
        self.per_port_tlps: List[int] = []

    # -- wiring ------------------------------------------------------------------

    def attach(self, link: PcieLink) -> int:
        """Route *link*'s upstream direction through this switch; returns
        the downstream-port index.  Must be called after the root side
        attached its receive callback (i.e. after ``create_port``)."""
        direction = link.upstream
        if direction.uplink is not None:
            raise ValueError(f"link {link.name!r} is already behind a switch")
        port = len(self._ports)
        direction.uplink = self
        direction.uplink_port = port
        self._ports.append(direction)
        self._queues.append(deque())
        self.per_port_tlps.append(0)
        return port

    @property
    def num_ports(self) -> int:
        return len(self._ports)

    # -- forwarding --------------------------------------------------------------

    def forward(
        self,
        direction: LinkDirection,
        tlp: "Tlp",
        delivered: Optional[Event],
    ) -> None:
        """A TLP finished its downstream-link serialization; queue it for
        the shared uplink.  Called by the hooked ``LinkDirection``."""
        self._queues[direction.uplink_port].append(
            (tlp, delivered, direction._prop_time)
        )
        if not self._busy:
            self._busy = True
            self._transmit_next()

    def _transmit_next(self) -> None:
        # Round-robin grant: scan from the port after the last winner.
        ports = len(self._queues)
        for offset in range(ports):
            port = (self._next_port + offset) % ports
            if self._queues[port]:
                break
        else:  # pragma: no cover - _busy guards against empty dispatch
            self._busy = False
            return
        tlp, delivered, prop_time = self._queues[port].popleft()
        self._next_port = port + 1
        wire = tlp.wire_bytes
        ser = self._ser_cache.get(wire)
        if ser is None:
            ser = self.config.serialization_time(wire)
            self._ser_cache[wire] = ser
        self.tlps_forwarded += 1
        self.bytes_forwarded += wire
        self.per_port_tlps[port] += 1
        if self.tracer.enabled:
            self.trace("uplink-tx", port=port, tlp=tlp.kind.value, bytes=wire)
        self.sim.schedule(ser, self._uplink_done, port, tlp, delivered, prop_time)

    def _uplink_done(
        self,
        port: int,
        tlp: "Tlp",
        delivered: Optional[Event],
        prop_time: SimTime,
    ) -> None:
        # Last byte cleared the uplink: deliver to the root complex after
        # the original direction's propagation delay (fault hooks and
        # tracing stay on the owning LinkDirection).
        direction = self._ports[port]
        self.sim.schedule(prop_time, direction._arrive, tlp, delivered)
        if any(self._queues):
            self._transmit_next()
        else:
            self._busy = False

    @property
    def stats(self) -> Dict[str, int]:
        out: Dict[str, int] = {
            "tlps_forwarded": self.tlps_forwarded,
            "bytes_forwarded": self.bytes_forwarded,
        }
        for port, count in enumerate(self.per_port_tlps):
            out[f"port{port}_tlps"] = count
        return out
