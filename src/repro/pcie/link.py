"""PCIe link timing model.

Models what drivers and DMA engines observe: serialization time at the
negotiated generation/width, per-direction propagation/pipeline latency,
and serialization of TLPs contending for the same direction (one TLP at a
time per direction, FIFO order -- an adequate stand-in for flow-control
credits at the queue depths these experiments produce).

The board in the paper (Alinx AX7A200, Artix-7) negotiates **Gen2 x2**:
5 GT/s per lane, 8b/10b encoding, so 4 Gb/s of data per lane and 1 GB/s
per direction for x2 before DLLP overhead.

Each direction is an independent :class:`LinkDirection` (full duplex).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Optional

from collections import deque

from repro.faults.plan import KIND_TLP_CORRUPT, KIND_TLP_DELAY, KIND_TLP_DROP
from repro.pcie.tlp import Tlp
from repro.sim.component import Component
from repro.sim.event import Event
from repro.sim.time import SimTime, ns

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


#: Per-lane raw signalling rate in gigatransfers/s by PCIe generation.
GT_PER_S = {1: 2.5e9, 2: 5.0e9, 3: 8.0e9}
#: Encoding efficiency: 8b/10b for Gen1/2, 128b/130b for Gen3.
ENCODING_EFFICIENCY = {1: 0.8, 2: 0.8, 3: 128.0 / 130.0}


@dataclass(frozen=True)
class LinkConfig:
    """Negotiated link parameters plus transaction-layer settings.

    Parameters
    ----------
    generation / lanes:
        Negotiated speed and width.
    max_payload:
        Max_Payload_Size in bytes (MWr/CplD payload cap).
    max_read_request:
        Max_Read_Request_Size in bytes.
    read_completion_boundary:
        RCB for completion splitting (host root complexes use 64 B).
    propagation_ns:
        One-way latency from requester transaction layer to completer
        transaction layer: PHY pipelines, link, and the root-complex or
        endpoint ingress.  Calibrated per testbed.
    dllp_efficiency:
        Fraction of data bandwidth left after DLLP/ordered-set overhead.
    """

    generation: int = 2
    lanes: int = 2
    max_payload: int = 256
    max_read_request: int = 512
    read_completion_boundary: int = 64
    propagation_ns: float = 150.0
    dllp_efficiency: float = 0.95

    def __post_init__(self) -> None:
        if self.generation not in GT_PER_S:
            raise ValueError(f"unsupported PCIe generation {self.generation}")
        if self.lanes not in (1, 2, 4, 8, 16):
            raise ValueError(f"invalid lane count {self.lanes}")
        for field_name in ("max_payload", "max_read_request"):
            value = getattr(self, field_name)
            if value < 128 or value & (value - 1):
                raise ValueError(f"{field_name} must be a power of two >= 128, got {value}")
        if not 0 < self.dllp_efficiency <= 1:
            raise ValueError(f"dllp_efficiency must be in (0,1], got {self.dllp_efficiency}")
        if self.propagation_ns < 0:
            raise ValueError(f"propagation_ns must be >= 0, got {self.propagation_ns}")

    @property
    def bytes_per_second(self) -> float:
        """Effective data bandwidth per direction."""
        raw_bits = GT_PER_S[self.generation] * self.lanes
        return raw_bits * ENCODING_EFFICIENCY[self.generation] * self.dllp_efficiency / 8.0

    def serialization_time(self, wire_bytes: int) -> SimTime:
        """Time to clock *wire_bytes* onto the link."""
        if wire_bytes < 0:
            raise ValueError(f"wire_bytes must be >= 0, got {wire_bytes}")
        return round(wire_bytes / self.bytes_per_second * 1e12)

    @property
    def propagation_time(self) -> SimTime:
        return ns(self.propagation_ns)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Gen{self.generation} x{self.lanes} "
            f"({self.bytes_per_second / 1e9:.2f} GB/s/dir, MPS={self.max_payload})"
        )


#: The paper's experimental link: Artix-7 board with two Gen2 lanes.
PAPER_LINK = LinkConfig(generation=2, lanes=2)


DeliverFn = Callable[[Tlp], None]


class LinkDirection(Component):
    """One direction of the full-duplex link.

    TLPs are serialized one at a time in FIFO order; each is delivered to
    the receiver's callback ``propagation_time`` after its last byte is
    clocked out.
    """

    def __init__(
        self,
        sim: "Simulator",
        config: LinkConfig,
        deliver: DeliverFn,
        name: str,
        parent: Optional[Component] = None,
    ) -> None:
        super().__init__(sim, name, parent=parent)
        self.config = config
        self.deliver = deliver
        self._queue: Deque[tuple[Tlp, Optional[Event]]] = deque()
        self._busy = False
        self._tlps_sent = 0
        self._bytes_sent = 0
        # Hot-path caches: the config is frozen, so serialization times
        # are a pure function of wire size (tiny key space: a handful of
        # TLP shapes per run), and the delivery-event name and
        # propagation delay never change.
        self._ser_cache: dict[int, SimTime] = {}
        self._prop_time = config.propagation_time
        self._delivered_name = f"{self.path}.delivered"
        # Pre-bound event callbacks: a fresh bound method per scheduled
        # hop would otherwise be allocated twice per TLP.
        self._tx_done_cb = self._tx_done
        self._arrive_cb = self._arrive
        #: Fault injector (attached by repro.faults; None in normal runs).
        self.injector = None
        #: Shared-uplink arbiter (a PcieSwitch) when this direction sits
        #: behind a switch; None leaves behaviour exactly as before.
        self.uplink = None
        self.uplink_port = -1
        #: Injection-site name: "pcie.down" / "pcie.up".
        self.fault_site = f"pcie.{name}"
        self.tlps_dropped = 0
        self.tlps_corrupted = 0
        self.tlps_delayed = 0

    def send(self, tlp: Tlp) -> Event:
        """Enqueue a TLP for transmission.  Returns the delivery event
        (fires when the TLP reaches the receiver); posted-write callers
        that do not care may ignore it."""
        delivered = Event(name=self._delivered_name)
        self._queue.append((tlp, delivered))
        if not self._busy:
            self._busy = True
            self._transmit_next()
        return delivered

    def post(self, tlp: Tlp) -> None:
        """Fire-and-forget enqueue: identical transmission timing to
        :meth:`send`, but no delivery event is allocated.  For TLPs
        whose delivery nothing ever waits on (completions, MSI writes,
        posted MMIO, read requests tracked by tag)."""
        self._queue.append((tlp, None))
        if not self._busy:
            self._busy = True
            self._transmit_next()

    def send_many(self, tlps) -> Event:
        """Write-combined enqueue of a TLP burst.

        Per-TLP timing is identical to looping :meth:`send`; the saving
        is bookkeeping: only the burst's last TLP carries a delivery
        event (the returned one, firing when the final TLP reaches the
        receiver -- the only event multi-TLP transfers ever waited on).
        """
        if not tlps:
            raise ValueError("send_many needs at least one TLP")
        delivered = Event(name=self._delivered_name)
        queue = self._queue
        last = len(tlps) - 1
        for i, tlp in enumerate(tlps):
            queue.append((tlp, delivered if i == last else None))
        if not self._busy:
            self._busy = True
            self._transmit_next()
        return delivered

    def _ser_time(self, wire_bytes: int) -> SimTime:
        time = self._ser_cache.get(wire_bytes)
        if time is None:
            time = self.config.serialization_time(wire_bytes)
            self._ser_cache[wire_bytes] = time
        return time

    def _transmit_next(self) -> None:
        tlp, delivered = self._queue.popleft()
        # Inline the serialization-time cache: this runs once per TLP.
        wire = tlp.wire_bytes
        tx_time = self._ser_cache.get(wire)
        if tx_time is None:
            tx_time = self.config.serialization_time(wire)
            self._ser_cache[wire] = tx_time
        if self.tracer.enabled:
            self.trace("tlp-tx", tlp=tlp.kind.value, addr=tlp.addr, bytes=wire)
        self._tlps_sent += 1
        self._bytes_sent += wire
        # Inlined ``sim.schedule(tx_time, self._tx_done, tlp, delivered)``
        # -- one of these runs per TLP on the wire.
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        sim._push((sim._now + tx_time, seq, self._tx_done_cb, (tlp, delivered)))

    def _tx_done(self, tlp: Tlp, delivered: Optional[Event]) -> None:
        # Last byte left the transmitter; arrival after propagation --
        # unless a switch uplink sits in between (store-and-forward:
        # the TLP still contends for the shared upstream link).
        if self.uplink is not None:
            self.uplink.forward(self, tlp, delivered)
        else:
            sim = self.sim
            sim._seq = seq = sim._seq + 1
            sim._push((sim._now + self._prop_time, seq, self._arrive_cb, (tlp, delivered)))
        if self._queue:
            self._transmit_next()
        else:
            self._busy = False

    def _arrive(self, tlp: Tlp, delivered: Optional[Event]) -> None:
        if self.injector is not None and self._inject_on_arrival(tlp, delivered):
            return
        if self.tracer.enabled:
            self.trace("tlp-rx", tlp=tlp.kind.value, addr=tlp.addr)
        self.deliver(tlp)
        if delivered is not None:
            delivered.trigger(None)

    def _inject_on_arrival(self, tlp: Tlp, delivered: Optional[Event]) -> bool:
        """Apply link-level faults to an arriving TLP.  Returns True when
        the normal delivery path must be skipped."""
        injector = self.injector
        if tlp.is_posted and injector.fire(self.fault_site, KIND_TLP_DROP) is not None:
            # The write is silently lost in the fabric.  The sender only
            # ever observed the posted handshake, so its local delivery
            # event still fires -- nothing upstream may block on a drop.
            self.tlps_dropped += 1
            self.trace("tlp-dropped", tlp=tlp.kind.value, addr=tlp.addr)
            if delivered is not None:
                delivered.trigger(None)
            return True
        if tlp.is_posted and len(tlp.data):
            if injector.fire(self.fault_site, KIND_TLP_CORRUPT) is not None:
                self.tlps_corrupted += 1
                self.trace("tlp-corrupted", addr=tlp.addr, bytes=len(tlp.data))
                # Copy-on-write: the payload may be a view of a pooled or
                # live buffer the fault must not scribble on.  Take a
                # private writable copy once, then flip the byte in place.
                buf = bytearray(tlp.data)
                buf[-1] ^= 0xFF
                tlp.data = buf
        spec = injector.fire(self.fault_site, KIND_TLP_DELAY)
        if spec is not None:
            self.tlps_delayed += 1
            self.trace("tlp-delayed", tlp=tlp.kind.value, addr=tlp.addr)
            if not isinstance(tlp.data, bytes):
                # The delayed delivery may outlive the buffer the payload
                # views (pooled staging is recycled once the sender's
                # delivery event fires) -- snapshot before rescheduling.
                tlp.data = bytes(tlp.data)
            self.sim.schedule(
                injector.delay_ps(spec, default_ns=500.0), self._deliver_late, tlp, delivered
            )
            return True
        return False

    def _deliver_late(self, tlp: Tlp, delivered: Optional[Event]) -> None:
        self.trace("tlp-rx", tlp=tlp.kind.value, addr=tlp.addr)
        self.deliver(tlp)
        if delivered is not None:
            delivered.trigger(None)

    @property
    def tlps_sent(self) -> int:
        return self._tlps_sent

    @property
    def bytes_sent(self) -> int:
        return self._bytes_sent

    @property
    def queue_depth(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)


class PcieLink(Component):
    """A full-duplex point-to-point link between two agents.

    The two agents (root complex and endpoint) attach receive callbacks;
    ``downstream``/``upstream`` carry TLPs toward the endpoint / toward
    the root complex respectively.
    """

    def __init__(
        self,
        sim: "Simulator",
        config: LinkConfig,
        name: str = "pcie-link",
        parent: Optional[Component] = None,
    ) -> None:
        super().__init__(sim, name, parent=parent)
        self.config = config
        self._downstream: Optional[LinkDirection] = None
        self._upstream: Optional[LinkDirection] = None

    def attach_endpoint_rx(self, deliver: DeliverFn) -> None:
        """Set the endpoint's receive callback (downstream direction)."""
        self._downstream = LinkDirection(self.sim, self.config, deliver, "down", parent=self)

    def attach_root_rx(self, deliver: DeliverFn) -> None:
        """Set the root complex's receive callback (upstream direction)."""
        self._upstream = LinkDirection(self.sim, self.config, deliver, "up", parent=self)

    def send_downstream(self, tlp: Tlp) -> Event:
        """Root complex -> endpoint; returns the delivery event."""
        if self._downstream is None:
            raise RuntimeError(f"link {self.name!r}: endpoint rx not attached")
        return self._downstream.send(tlp)

    def send_upstream(self, tlp: Tlp) -> Event:
        """Endpoint -> root complex; returns the delivery event."""
        if self._upstream is None:
            raise RuntimeError(f"link {self.name!r}: root rx not attached")
        return self._upstream.send(tlp)

    def post_downstream(self, tlp: Tlp) -> None:
        """Fire-and-forget :meth:`send_downstream` (no delivery event)."""
        if self._downstream is None:
            raise RuntimeError(f"link {self.name!r}: endpoint rx not attached")
        self._downstream.post(tlp)

    def post_upstream(self, tlp: Tlp) -> None:
        """Fire-and-forget :meth:`send_upstream` (no delivery event)."""
        if self._upstream is None:
            raise RuntimeError(f"link {self.name!r}: root rx not attached")
        self._upstream.post(tlp)

    @property
    def endpoint_attached(self) -> bool:
        """Whether a device terminates the downstream direction (links
        with no device behave as empty slots at enumeration)."""
        return self._downstream is not None

    @property
    def downstream(self) -> LinkDirection:
        assert self._downstream is not None
        return self._downstream

    @property
    def upstream(self) -> LinkDirection:
        assert self._upstream is not None
        return self._upstream
