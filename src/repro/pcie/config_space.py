"""PCI configuration space (type-0 header + capability list).

Implements the pieces the paper's flow depends on:

* device/vendor ID readout at enumeration ("announce the correct device
  and vendor IDs at the time of device discovery and PCIe bus
  enumeration" -- Section II-C requirement (i)),
* command register (memory-space enable, bus-master enable),
* BAR registers with the standard sizing protocol (write all-ones, read
  back the size mask),
* a linked capability list ("add the VirtIO capabilities to the device
  capability list" -- requirement (iii)), supporting MSI-X and
  vendor-specific capabilities.

The space is a real 4 KiB bytearray; drivers read it through config TLPs
exactly as a kernel does through the ECAM window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.mem.layout import read_u8, read_u16, write_u8, write_u16

CONFIG_SPACE_SIZE = 4096

# Standard type-0 header offsets.
VENDOR_ID_OFFSET = 0x00
DEVICE_ID_OFFSET = 0x02
COMMAND_OFFSET = 0x04
STATUS_OFFSET = 0x06
REVISION_ID_OFFSET = 0x08
CLASS_CODE_OFFSET = 0x09  # 3 bytes: prog-if, subclass, class
HEADER_TYPE_OFFSET = 0x0E
BAR0_OFFSET = 0x10
NUM_BARS = 6
SUBSYSTEM_VENDOR_ID_OFFSET = 0x2C
SUBSYSTEM_ID_OFFSET = 0x2E
CAPABILITIES_POINTER_OFFSET = 0x34
INTERRUPT_LINE_OFFSET = 0x3C
INTERRUPT_PIN_OFFSET = 0x3D

# Command register bits.
COMMAND_MEMORY_SPACE = 1 << 1
COMMAND_BUS_MASTER = 1 << 2
COMMAND_INTX_DISABLE = 1 << 10

# Status register bits.
STATUS_CAPABILITIES_LIST = 1 << 4

# Capability IDs.
CAP_ID_POWER_MANAGEMENT = 0x01
CAP_ID_MSI = 0x05
CAP_ID_VENDOR_SPECIFIC = 0x09
CAP_ID_PCIE = 0x10
CAP_ID_MSIX = 0x11

#: First byte available for capabilities in the type-0 layout.
FIRST_CAPABILITY_OFFSET = 0x40

# BAR flag bits.
BAR_IO_SPACE = 0x1
BAR_TYPE_64BIT = 0x2 << 1
BAR_PREFETCHABLE = 1 << 3


@dataclass
class BarDefinition:
    """One memory BAR: size and attribute flags."""

    index: int
    size: int
    prefetchable: bool = False
    is_64bit: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_BARS:
            raise ValueError(f"BAR index {self.index} out of range")
        if self.size < 16 or self.size & (self.size - 1):
            raise ValueError(f"BAR size must be a power of two >= 16, got {self.size}")
        if self.is_64bit and self.index >= NUM_BARS - 1:
            raise ValueError("a 64-bit BAR cannot use the last BAR slot")

    @property
    def flag_bits(self) -> int:
        flags = 0
        if self.is_64bit:
            flags |= BAR_TYPE_64BIT
        if self.prefetchable:
            flags |= BAR_PREFETCHABLE
        return flags


class ConfigSpace:
    """A function's 4 KiB configuration space."""

    def __init__(
        self,
        vendor_id: int,
        device_id: int,
        class_code: int = 0,
        revision_id: int = 0,
        subsystem_vendor_id: int = 0,
        subsystem_id: int = 0,
    ) -> None:
        self._data = bytearray(CONFIG_SPACE_SIZE)
        write_u16(self._data, VENDOR_ID_OFFSET, vendor_id)
        write_u16(self._data, DEVICE_ID_OFFSET, device_id)
        write_u8(self._data, REVISION_ID_OFFSET, revision_id)
        # class_code is the 24-bit (class << 16 | subclass << 8 | prog-if).
        self._data[CLASS_CODE_OFFSET : CLASS_CODE_OFFSET + 3] = class_code.to_bytes(3, "little")
        write_u16(self._data, SUBSYSTEM_VENDOR_ID_OFFSET, subsystem_vendor_id)
        write_u16(self._data, SUBSYSTEM_ID_OFFSET, subsystem_id)
        self._bars: Dict[int, BarDefinition] = {}
        self._bar_sizing: Dict[int, bool] = {}  # index -> last write was all-ones
        self._bar_addrs: Dict[int, int] = {}
        #: Bumped whenever BAR programming or the command register
        #: changes; endpoints key their decoded-BAR caches on it.
        self.generation = 0
        self._next_cap_offset = FIRST_CAPABILITY_OFFSET
        self._last_cap_offset: Optional[int] = None
        self._capabilities: List[Tuple[int, int]] = []  # (cap_id, offset)

    # -- identity -----------------------------------------------------------

    @property
    def vendor_id(self) -> int:
        return read_u16(self._data, VENDOR_ID_OFFSET)

    @property
    def device_id(self) -> int:
        return read_u16(self._data, DEVICE_ID_OFFSET)

    @property
    def command(self) -> int:
        return read_u16(self._data, COMMAND_OFFSET)

    @property
    def memory_enabled(self) -> bool:
        return bool(self.command & COMMAND_MEMORY_SPACE)

    @property
    def bus_master_enabled(self) -> bool:
        return bool(self.command & COMMAND_BUS_MASTER)

    # -- BARs ----------------------------------------------------------------

    def define_bar(self, bar: BarDefinition) -> None:
        """Declare a BAR (device build time, before enumeration)."""
        if bar.index in self._bars:
            raise ValueError(f"BAR {bar.index} already defined")
        if bar.is_64bit and (bar.index + 1) in self._bars:
            raise ValueError(f"BAR {bar.index + 1} needed for 64-bit BAR {bar.index}")
        self._bars[bar.index] = bar
        self._bar_addrs[bar.index] = 0
        self.generation += 1

    def bar_definition(self, index: int) -> Optional[BarDefinition]:
        return self._bars.get(index)

    def bar_address(self, index: int) -> int:
        """The currently programmed base address of a BAR."""
        if index not in self._bars:
            raise KeyError(f"BAR {index} not defined")
        return self._bar_addrs[index]

    def _bar_register_read(self, index: int) -> int:
        bar = self._bars.get(index)
        if bar is None:
            # Also covers the upper half of a 64-bit BAR.
            lower = self._bars.get(index - 1)
            if lower is not None and lower.is_64bit:
                if self._bar_sizing.get(index - 1):
                    size_mask = ~(lower.size - 1) & ((1 << 64) - 1)
                    return (size_mask >> 32) & 0xFFFF_FFFF
                return (self._bar_addrs[index - 1] >> 32) & 0xFFFF_FFFF
            return 0
        if self._bar_sizing.get(index):
            size_mask = ~(bar.size - 1) & ((1 << 64) - 1)
            return (size_mask & 0xFFFF_FFF0) | bar.flag_bits
        return (self._bar_addrs[index] & 0xFFFF_FFF0) | bar.flag_bits

    def _bar_register_write(self, index: int, value: int) -> None:
        bar = self._bars.get(index)
        if bar is None:
            lower = self._bars.get(index - 1)
            if lower is not None and lower.is_64bit:
                if value == 0xFFFF_FFFF:
                    return  # sizing write to upper half; read handled above
                addr = self._bar_addrs[index - 1]
                self._bar_addrs[index - 1] = (addr & 0xFFFF_FFFF) | (value << 32)
                self._bar_sizing[index - 1] = False
                self.generation += 1
            return
        if value == 0xFFFF_FFFF:
            self._bar_sizing[index] = True
            return
        self._bar_sizing[index] = False
        addr = self._bar_addrs[index]
        self._bar_addrs[index] = (addr & ~0xFFFF_FFFF) | (value & 0xFFFF_FFF0)
        self.generation += 1

    # -- capability list -----------------------------------------------------

    def add_capability(self, cap_id: int, body: bytes) -> int:
        """Append a capability; returns its config-space offset.

        *body* is the capability content **after** the two standard bytes
        (cap ID, next pointer), which this method manages.
        """
        total = 2 + len(body)
        offset = (self._next_cap_offset + 3) & ~3  # DWORD align
        if offset + total > 0x100:
            raise ValueError("capability list exceeds standard config space")
        write_u8(self._data, offset, cap_id)
        write_u8(self._data, offset + 1, 0)  # next = end of list
        self._data[offset + 2 : offset + total] = body
        if self._last_cap_offset is None:
            write_u8(self._data, CAPABILITIES_POINTER_OFFSET, offset)
            status = read_u16(self._data, STATUS_OFFSET)
            write_u16(self._data, STATUS_OFFSET, status | STATUS_CAPABILITIES_LIST)
        else:
            write_u8(self._data, self._last_cap_offset + 1, offset)
        self._last_cap_offset = offset
        self._next_cap_offset = offset + total
        self._capabilities.append((cap_id, offset))
        return offset

    def walk_capabilities(self) -> List[Tuple[int, int]]:
        """Walk the capability chain as a driver would: list of
        (cap_id, offset).  Walks the actual pointers, not the bookkeeping
        list, so tests catch chain corruption."""
        out: List[Tuple[int, int]] = []
        status = read_u16(self._data, STATUS_OFFSET)
        if not status & STATUS_CAPABILITIES_LIST:
            return out
        offset = read_u8(self._data, CAPABILITIES_POINTER_OFFSET)
        seen = set()
        while offset:
            if offset in seen:
                raise RuntimeError(f"capability chain loop at {offset:#x}")
            seen.add(offset)
            cap_id = read_u8(self._data, offset)
            out.append((cap_id, offset))
            offset = read_u8(self._data, offset + 1)
        return out

    def find_capabilities(self, cap_id: int) -> List[int]:
        """Offsets of every capability with *cap_id* (VirtIO has several
        vendor-specific entries)."""
        return [off for cid, off in self.walk_capabilities() if cid == cap_id]

    # -- raw access (config TLP handlers) -------------------------------------

    def read(self, offset: int, length: int) -> bytes:
        """Config read with BAR-register interception."""
        if offset < 0 or offset + length > CONFIG_SPACE_SIZE:
            raise IndexError(f"config read [{offset:#x},{offset + length:#x}) out of range")
        if BAR0_OFFSET <= offset < BAR0_OFFSET + 4 * NUM_BARS and length == 4 and offset % 4 == 0:
            index = (offset - BAR0_OFFSET) // 4
            return self._bar_register_read(index).to_bytes(4, "little")
        return bytes(self._data[offset : offset + length])

    def write(self, offset: int, data: bytes) -> None:
        """Config write with BAR/command-register semantics.

        Read-only identity fields silently drop writes, matching
        hardware.
        """
        length = len(data)
        if offset < 0 or offset + length > CONFIG_SPACE_SIZE:
            raise IndexError(f"config write [{offset:#x},{offset + length:#x}) out of range")
        if BAR0_OFFSET <= offset < BAR0_OFFSET + 4 * NUM_BARS and length == 4 and offset % 4 == 0:
            index = (offset - BAR0_OFFSET) // 4
            self._bar_register_write(index, int.from_bytes(data, "little"))
            return
        if offset == COMMAND_OFFSET and length in (2, 4):
            write_u16(self._data, COMMAND_OFFSET, int.from_bytes(data[:2], "little"))
            self.generation += 1
            return
        if offset < 0x10 or (0x2C <= offset < 0x34):
            return  # read-only identity / subsystem region
        self._data[offset : offset + length] = data

    @property
    def raw(self) -> bytearray:
        """The backing store (for capability implementations that keep
        live state in config space, e.g. MSI-X message control)."""
        return self._data
