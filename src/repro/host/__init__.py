"""Host OS model: kernel hub, costs/noise, interrupts, timekeeping,
character devices, and the network stack (``repro.host.netstack``)."""

from repro.host.chardev import CharDevice, sys_poll, sys_read, sys_write
from repro.host.costs import CostModel, InterferenceModel, default_cost_model
from repro.host.irq import InterruptController
from repro.host.kernel import HostKernel
from repro.host.timekeeping import MonotonicClock

__all__ = [
    "CharDevice",
    "CostModel",
    "HostKernel",
    "InterferenceModel",
    "InterruptController",
    "MonotonicClock",
    "default_cost_model",
    "sys_poll",
    "sys_read",
    "sys_write",
]
