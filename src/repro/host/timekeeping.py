"""Host timekeeping.

Section III-B3: "the test applications use the ``clock_gettime()``
function with the ``CLOCK_MONOTONIC`` option. For the system on which
the tests were run, the timer resolution is 1ns."

:class:`MonotonicClock` quantizes simulation time to that resolution and
charges the (vDSO) call cost, so measured values differ from true
simulation timestamps exactly the way a real measurement does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.time import NS, SimTime, ns

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class MonotonicClock:
    """CLOCK_MONOTONIC as seen by user space."""

    #: vDSO clock_gettime cost (no syscall trap on the modeled host).
    CALL_COST_PS = ns(25)

    def __init__(self, sim: "Simulator", resolution_ps: SimTime = NS) -> None:
        if resolution_ps <= 0:
            raise ValueError(f"resolution must be positive, got {resolution_ps}")
        self.sim = sim
        self.resolution_ps = resolution_ps

    def gettime_ns(self) -> int:
        """The timestamp ``clock_gettime`` would return, in nanoseconds."""
        quantized = (self.sim.now // self.resolution_ps) * self.resolution_ps
        return quantized // NS

    def call_cost(self) -> SimTime:
        """Duration the calling code should consume for the call itself."""
        return self.CALL_COST_PS
