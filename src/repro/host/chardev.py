"""Character-device framework and its syscall layer.

The XDMA reference driver "operates as a character device. At the most
basic level, a user application can use the I/O system calls ``read()``
and ``write()`` to move data between a buffer in the host memory and
FPGA memory" (Section IV-A).  This module provides the VFS-like plumbing
between a test application and such a driver:

* :class:`CharDevice` -- the file-operations interface a driver
  implements (``dev_write`` / ``dev_read`` / ``poll_readable``),
* syscall wrappers (:func:`sys_write`, :func:`sys_read`, :func:`sys_poll`)
  that add the trap/dispatch costs around the driver's work.

Applications call the wrappers with ``yield from``.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.host.kernel import HostKernel
from repro.sim.event import Event


class CharDevice:
    """File operations a character-device driver provides."""

    def __init__(self, name: str) -> None:
        self.name = name

    def dev_write(self, data: bytes) -> Generator[Any, Any, int]:
        """Driver write path; returns bytes accepted."""
        raise NotImplementedError
        yield  # pragma: no cover

    def dev_read(self, length: int) -> Generator[Any, Any, bytes]:
        """Driver read path; returns the data."""
        raise NotImplementedError
        yield  # pragma: no cover

    def poll_readable(self) -> Event:
        """Event that fires when the device becomes readable."""
        raise NotImplementedError


def sys_write(kernel: HostKernel, dev: CharDevice, data: bytes) -> Generator[Any, Any, int]:
    """``write(fd, buf, n)`` on a character device.

    The XDMA driver pins the user buffer for DMA rather than copying it,
    so no per-byte copy cost appears here; buffer pinning/mapping cost
    is part of the driver's ``driver_descriptor_build`` segment.
    """
    yield kernel.cpu("syscall_entry")
    yield kernel.cpu("chardev_dispatch")
    written = yield from dev.dev_write(data)
    yield kernel.cpu("syscall_exit")
    return written


def sys_read(kernel: HostKernel, dev: CharDevice, length: int) -> Generator[Any, Any, bytes]:
    """``read(fd, buf, n)`` on a character device."""
    yield kernel.cpu("syscall_entry")
    yield kernel.cpu("chardev_dispatch")
    data = yield from dev.dev_read(length)
    yield kernel.cpu("syscall_exit")
    return data


def sys_poll(kernel: HostKernel, dev: CharDevice) -> Generator[Any, Any, None]:
    """``poll(fd)`` until the device is readable (Section IV-A: "The
    user application uses a system call such as poll() to monitor the
    device file for interrupts")."""
    yield kernel.cpu("syscall_entry")
    yield kernel.cpu("poll_syscall")
    event = dev.poll_readable()
    if not event.triggered:
        yield from kernel.block_on(event)
    yield kernel.cpu("syscall_exit")
