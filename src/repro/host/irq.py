"""Host interrupt delivery.

MSI-X messages posted by devices land in the root complex, which hands
(address, data) to this controller.  Devices are programmed (by the
modeled drivers) with ``data = vector index``; the controller dispatches
to the registered handler with realistic entry/exit costs, and offers a
softirq deferral facility for the NAPI half of network receive.

Handlers are *generator factories*: each delivery spawns a fresh
process, so a slow handler naturally delays (FIFO-serializes) subsequent
work the way a real CPU servicing back-to-back interrupts does.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Generator, Optional

from repro.faults.plan import KIND_DUP_MSI, KIND_LOST_MSI, SITE_HOST_IRQ
from repro.sim.component import Component
from repro.sim.resource import Mutex

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.kernel import HostKernel
    from repro.sim.kernel import Simulator

HandlerFactory = Callable[[], Generator]


class InterruptController(Component):
    """Vector -> handler dispatch with IRQ path costs."""

    def __init__(self, sim: "Simulator", kernel: "HostKernel",
                 parent: Optional[Component] = None) -> None:
        super().__init__(sim, "irqc", parent=parent)
        self.kernel = kernel
        self._handlers: Dict[int, HandlerFactory] = {}
        #: One CPU services interrupts at a time (single-core IRQ path;
        #: the measured host pins the workload while idle otherwise).
        self._cpu = Mutex(sim, name="irq-cpu")
        self._next_vector = 0
        self.delivered = 0
        self.spurious = 0
        #: Fault injector, attached by repro.faults (None in normal runs).
        self.injector = None
        self.msis_lost = 0
        self.msis_duplicated = 0
        #: Handler decorator installed by :class:`repro.guest.Vmm`:
        #: ``wrap(vector, factory) -> factory`` charging injection costs
        #: before the guest handler runs.  Applied at registration time
        #: so dispatch (spawn names, unregister-by-vector) is untouched.
        self.inject_wrap: Optional[Callable[[int, HandlerFactory], HandlerFactory]] = None

    def allocate_vector(self) -> int:
        """Allocate a system-unique interrupt vector (the model's
        analogue of ``pci_irq_vector``): drivers program it as the MSI
        message *data* so multiple devices never collide."""
        vector = self._next_vector
        self._next_vector += 1
        return vector

    def register(self, vector: int, handler: HandlerFactory) -> None:
        if vector in self._handlers:
            raise ValueError(f"vector {vector} already has a handler")
        if self.inject_wrap is not None:
            handler = self.inject_wrap(vector, handler)
        self._handlers[vector] = handler

    def unregister(self, vector: int) -> None:
        self._handlers.pop(vector, None)

    def deliver_msi(self, address: int, data: int) -> None:
        """Root-complex callback: an MSI write arrived."""
        vector = data & 0xFF
        handler = self._handlers.get(vector)
        if handler is None:
            self.spurious += 1
            self.trace("spurious-msi", vector=vector, address=address)
            return
        if self.injector is not None:
            if self.injector.fire(SITE_HOST_IRQ, KIND_LOST_MSI) is not None:
                # The MSI write is dropped on the host side (e.g. APIC
                # redirection race); the device believes it interrupted.
                self.msis_lost += 1
                self.trace("msi-lost", vector=vector)
                return
            if self.injector.fire(SITE_HOST_IRQ, KIND_DUP_MSI) is not None:
                self.msis_duplicated += 1
                self.trace("msi-duplicated", vector=vector)
                self.delivered += 1
                self.spawn(self._dispatch(handler), name=f"irq{vector}-dup")
        self.delivered += 1
        self.trace("msi", vector=vector)
        self.spawn(self._dispatch(handler), name=f"irq{vector}")

    def _dispatch(self, handler: HandlerFactory):
        yield self._cpu.acquire()
        try:
            yield self.kernel.cpu("irq_entry")
            yield from handler()
            yield self.kernel.cpu("irq_exit")
        finally:
            self._cpu.release()

    def raise_softirq(self, body: Generator, name: str = "softirq") -> None:
        """Defer *body* to softirq context (NET_RX style): it runs after
        the softirq transition cost, outside the hard-IRQ lock."""
        self.spawn(self._softirq(body), name=name)

    def _softirq(self, body: Generator):
        yield self.kernel.cpu("softirq_schedule")
        yield from body
