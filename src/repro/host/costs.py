"""Host software cost model.

Every software step in the simulated kernel (syscall entry, skb
allocation, driver register programming, interrupt dispatch, task
wakeup, ...) is a named :class:`~repro.sim.random.LatencyModel`.  The
:class:`CostModel` is the single calibration surface: the experiment
layer builds one per testbed (see :mod:`repro.core.calibration`), and
ablations switch parts of it off.

Nominal values are calibrated so that the full pipelines land in the
paper's measured ranges on its Fedora 37 x86 host (Section III-B);
relative structure (which driver executes which segments) is what
produces the paper's qualitative results, and comes from the driver
models, not from these constants.

Two noise components:

* **body jitter** -- per-segment lognormal (cache/TLB/branch variation),
* **interference** -- a Poisson field of scheduler/IRQ preemption events
  that stall whatever software segment they land in (see
  :class:`InterferenceModel`).  Hardware segments are immune, which is
  exactly the mechanism the paper invokes for VirtIO's lower variance
  ("As the variance in hardware latency is minimal, the setup that
  offloads more tasks to the hardware results in lower overall
  variance", Section V).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np

from repro.sim.random import LatencyModel
from repro.sim.time import SimTime, ns, us


@dataclass(frozen=True)
class InterferenceModel:
    """Poisson preemption field.

    While a software segment of duration *d* executes, it is hit by a
    preemption with probability ``1 - exp(-rate_hz * d)``; a hit adds a
    Pareto-distributed stall (scheduling the preempted task out and back
    in, plus whatever ran in between).

    ``rate_hz`` ~ 100/s and stalls of tens of microseconds reproduce the
    paper's p99.9 behaviour: rare, large, and driver-independent in
    magnitude -- so both drivers' 99.9% tails converge (Table I) while
    the driver with more software time is hit more often (its p99
    suffers first).
    """

    rate_hz: float = 220.0
    stall_scale: SimTime = us(18)
    stall_alpha: float = 2.3
    #: Stalls are capped to keep single samples physical (a 10 ms hit
    #: would mean the test app lost its timeslice entirely).
    stall_cap: SimTime = us(80)
    #: Micro-stall field: frequent small disturbances (IRQ stacking,
    #: LLC/TLB shootdown storms, SMT contention) that shape the
    #: p95-to-p99 region.  Also duration-proportional, so the driver
    #: with the larger software share collects proportionally more of
    #: them -- the paper's variance mechanism.
    micro_rate_hz: float = 9000.0
    micro_scale: SimTime = us(2)
    micro_alpha: float = 2.2
    micro_cap: SimTime = us(30)

    def __post_init__(self) -> None:
        for rate in (self.rate_hz, self.micro_rate_hz):
            if rate < 0:
                raise ValueError(f"rates must be >= 0, got {rate}")
        for alpha in (self.stall_alpha, self.micro_alpha):
            if alpha <= 1.0:
                raise ValueError(f"alphas must be > 1 (finite mean), got {alpha}")

    @staticmethod
    def _component(
        duration: SimTime,
        rate_hz: float,
        scale: SimTime,
        alpha: float,
        cap: SimTime,
        rng: np.random.Generator,
    ) -> SimTime:
        if rate_hz == 0.0 or duration <= 0:
            return 0
        p_hit = 1.0 - math.exp(-rate_hz * duration / 1e12)
        if rng.random() >= p_hit:
            return 0
        u = max(float(rng.random()), 1e-12)
        return min(round(float(scale) * u ** (-1.0 / alpha)), cap)

    def stall_during(self, duration: SimTime, rng: np.random.Generator) -> SimTime:
        """Sampled extra stall for a software segment of *duration*."""
        stall = self._component(
            duration, self.rate_hz, self.stall_scale, self.stall_alpha, self.stall_cap, rng
        )
        stall += self._component(
            duration, self.micro_rate_hz, self.micro_scale, self.micro_alpha, self.micro_cap, rng
        )
        return stall

    def disabled(self) -> "InterferenceModel":
        return replace(self, rate_hz=0.0, micro_rate_hz=0.0)


def _seg(
    nominal_ns: float,
    sigma: float = 0.10,
    tail_prob: float = 0.0,
    tail_scale_ns: float = 2000.0,
    tail_alpha: float = 2.2,
) -> LatencyModel:
    """A software segment: nominal + lognormal body jitter.

    Heavy-tail behaviour comes from the duration-proportional
    :class:`InterferenceModel` fields rather than per-segment tails, so
    the driver with the larger software share collects proportionally
    more of it (the paper's variance mechanism)."""
    return LatencyModel(
        nominal_ps=ns(nominal_ns),
        jitter_sigma=sigma,
        tail_prob=tail_prob,
        tail_scale_ps=ns(tail_scale_ns),
        tail_alpha=tail_alpha,
    )


@dataclass
class CostModel:
    """Named costs of every modeled host software operation."""

    #: Per-segment costs, keyed by name.
    segments: Dict[str, LatencyModel] = field(default_factory=dict)
    #: Per-byte copy cost (memcpy/copy_to_user steady state), ps/byte.
    copy_ps_per_byte: float = 35.0
    #: Per-byte checksum cost (software inet checksum), ps/byte.
    csum_ps_per_byte: float = 55.0
    #: The preemption field.
    interference: InterferenceModel = field(default_factory=InterferenceModel)

    def segment(self, name: str) -> LatencyModel:
        model = self.segments.get(name)
        if model is None:
            raise KeyError(f"no cost segment named {name!r}")
        return model

    def has_segment(self, name: str) -> bool:
        return name in self.segments

    def copy_cost(self, length: int) -> SimTime:
        """Deterministic component of copying *length* bytes."""
        return round(self.copy_ps_per_byte * length)

    def csum_cost(self, length: int) -> SimTime:
        """Deterministic component of checksumming *length* bytes."""
        return round(self.csum_ps_per_byte * length)

    def without_noise(self) -> "CostModel":
        """Deterministic copy for ablation A3 (body jitter and
        interference both off)."""
        return CostModel(
            segments={name: m.without_noise() for name, m in self.segments.items()},
            copy_ps_per_byte=self.copy_ps_per_byte,
            csum_ps_per_byte=self.csum_ps_per_byte,
            interference=self.interference.disabled(),
        )

    def scaled(self, factor: float) -> "CostModel":
        """All nominal segment costs scaled (CPU-speed sensitivity)."""
        return CostModel(
            segments={name: m.scaled(factor) for name, m in self.segments.items()},
            copy_ps_per_byte=self.copy_ps_per_byte * factor,
            csum_ps_per_byte=self.csum_ps_per_byte * factor,
            interference=self.interference,
        )


def default_cost_model(jitter_sigma: float = 0.10,
                       interference: Optional[InterferenceModel] = None) -> CostModel:
    """The calibrated Fedora-37-class host cost model.

    Segment inventory (ns nominals):

    ===========================  ======================================
    segment                      models
    ===========================  ======================================
    syscall_entry/exit           trap + mitigations each way
    copy_touch                   base cost of a copy (cache line setup)
    skb_alloc / skb_free         sk_buff + data allocation / release
    sock_lookup                  fd -> socket resolution
    udp_tx / udp_rx              UDP layer work per packet
    ip_tx / ip_rx                IPv4 layer incl. route/dst cache hit
    neigh_resolve                ARP cache hit + ethernet header fill
    dev_xmit                     qdisc/dev_queue_xmit into the driver
    netif_receive                __netif_receive_skb up to UDP demux
    sock_enqueue                 socket backlog enqueue + wakeup issue
    mmio_write_cpu               CPU cost of a posted UC store
    mmio_read_extra              CPU-side cost around an MMIO read stall
    irq_entry                    vector dispatch to handler entry
    irq_exit                     EOI + return path
    softirq_schedule             raise + transition into NET_RX softirq
    napi_poll_entry              napi_schedule to poll callback
    task_wakeup                  wake_up -> task running on a CPU
    chardev_dispatch             VFS file-ops dispatch
    driver_descriptor_build      XDMA driver: build/launch one transfer
    driver_irq_ack               XDMA driver: read/ack engine status
    virtio_add_buf               virtqueue_add_sgs bookkeeping
    virtio_get_buf               virtqueue_get_buf + detach
    poll_syscall                 poll()/epoll_wait dispatch overhead
    app_work                     user-space loop body around the calls
    vmexit                       guest: VM exit (world switch out)
    vmentry                      guest: VM entry (world switch back)
    irq_inject                   guest: VMM-emulated interrupt inject
    vhost_doorbell               guest: ioeventfd-style doorbell exit
    vhost_irq_inject             guest: irqfd-style interrupt inject
    ===========================  ======================================

    The five ``vmexit``/``vmentry``/``irq_inject``/``vhost_doorbell``/
    ``vhost_irq_inject`` segments are consumed only when a
    :class:`repro.guest.Vmm` is attached (guest mode ``trapped`` or
    ``vhost``); bare-metal runs never sample them, so adding them here
    is draw-sequence neutral.  Calibration notes: docs/calibration.md.
    """
    segs = {
        "syscall_entry": _seg(260, jitter_sigma),
        "syscall_exit": _seg(240, jitter_sigma),
        "copy_touch": _seg(60, jitter_sigma),
        "skb_alloc": _seg(350, jitter_sigma),
        "skb_free": _seg(160, jitter_sigma),
        "sock_lookup": _seg(180, jitter_sigma),
        "udp_tx": _seg(420, jitter_sigma),
        "udp_rx": _seg(380, jitter_sigma),
        "ip_tx": _seg(480, jitter_sigma),
        "ip_rx": _seg(400, jitter_sigma),
        "neigh_resolve": _seg(160, jitter_sigma),
        "dev_xmit": _seg(550, jitter_sigma),
        "netif_receive": _seg(500, jitter_sigma),
        "sock_enqueue": _seg(340, jitter_sigma),
        "mmio_write_cpu": _seg(160, jitter_sigma),
        "mmio_read_extra": _seg(80, jitter_sigma),
        "irq_entry": _seg(1600, jitter_sigma),
        "irq_exit": _seg(350, jitter_sigma),
        "softirq_schedule": _seg(500, jitter_sigma),
        "napi_poll_entry": _seg(400, jitter_sigma),
        "task_wakeup": _seg(6000, jitter_sigma),
        "chardev_dispatch": _seg(300, jitter_sigma),
        "driver_descriptor_build": _seg(5200, jitter_sigma),
        "driver_irq_ack": _seg(420, jitter_sigma),
        "virtio_add_buf": _seg(340, jitter_sigma),
        "virtio_get_buf": _seg(260, jitter_sigma),
        "poll_syscall": _seg(320, jitter_sigma),
        "app_work": _seg(220, jitter_sigma),
        "vmexit": _seg(900, jitter_sigma),
        "vmentry": _seg(700, jitter_sigma),
        "irq_inject": _seg(1800, jitter_sigma),
        "vhost_doorbell": _seg(350, jitter_sigma),
        "vhost_irq_inject": _seg(600, jitter_sigma),
    }
    return CostModel(
        segments=segs,
        interference=interference if interference is not None else InterferenceModel(),
    )
