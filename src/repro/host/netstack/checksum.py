"""Internet checksum (RFC 1071), vectorized.

Used by the IPv4/UDP codecs and by the FPGA user logic's checksum
offload.  NumPy handles the 16-bit one's-complement sum so checksumming
a 1 KiB payload costs one vector pass, keeping 50 000-packet experiment
runs fast (per the HPC guides: vectorize the hot loop).
"""

from __future__ import annotations

import numpy as np


def ones_complement_sum(data: bytes) -> int:
    """16-bit one's-complement sum of *data* (odd length zero-padded)."""
    if len(data) % 2:
        # join (not +) so memoryview inputs from the zero-copy RX path
        # work without a prior materialization.
        data = b"".join((data, b"\x00"))
    words = np.frombuffer(data, dtype=">u2").astype(np.uint64)
    total = int(words.sum())
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """The RFC 1071 checksum of *data* (already-complemented, as stored
    in headers)."""
    return (~ones_complement_sum(data)) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True if *data* (including its checksum field) sums to all-ones."""
    return ones_complement_sum(data) == 0xFFFF


def pseudo_header(src_ip: int, dst_ip: int, protocol: int, length: int) -> bytes:
    """IPv4 pseudo-header for UDP/TCP checksums."""
    out = bytearray(12)
    out[0:4] = src_ip.to_bytes(4, "big")
    out[4:8] = dst_ip.to_bytes(4, "big")
    out[9] = protocol
    out[10:12] = length.to_bytes(2, "big")
    return bytes(out)
