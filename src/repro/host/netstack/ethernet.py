"""Ethernet II framing."""

from __future__ import annotations

from dataclasses import dataclass

ETH_HEADER_SIZE = 14
ETH_P_IP = 0x0800
ETH_P_ARP = 0x0806

#: Minimum payload so a frame reaches the 60-byte (pre-FCS) minimum.
ETH_MIN_PAYLOAD = 46

BROADCAST_MAC = b"\xff\xff\xff\xff\xff\xff"


def mac_str(mac: bytes) -> str:
    """Human-readable MAC."""
    return ":".join(f"{b:02x}" for b in mac)


def parse_mac(text: str) -> bytes:
    """Parse ``aa:bb:cc:dd:ee:ff``."""
    parts = text.split(":")
    if len(parts) != 6:
        raise ValueError(f"bad MAC address {text!r}")
    return bytes(int(p, 16) for p in parts)


@dataclass(frozen=True)
class EthernetFrame:
    """One layer-2 frame (FCS excluded; the link models treat it as part
    of per-packet overhead)."""

    dst: bytes
    src: bytes
    ethertype: int
    payload: bytes

    def __post_init__(self) -> None:
        if len(self.dst) != 6 or len(self.src) != 6:
            raise ValueError("MAC addresses must be 6 bytes")
        if not 0 <= self.ethertype <= 0xFFFF:
            raise ValueError(f"bad ethertype {self.ethertype:#x}")

    def encode(self, pad: bool = True) -> bytes:
        payload = self.payload
        if pad and len(payload) < ETH_MIN_PAYLOAD:
            payload = payload + bytes(ETH_MIN_PAYLOAD - len(payload))
        return self.dst + self.src + self.ethertype.to_bytes(2, "big") + payload

    @classmethod
    def decode(cls, data: bytes) -> "EthernetFrame":
        if len(data) < ETH_HEADER_SIZE:
            raise ValueError(f"frame too short: {len(data)}B")
        return cls(
            dst=bytes(data[0:6]),
            src=bytes(data[6:12]),
            ethertype=int.from_bytes(data[12:14], "big"),
            payload=bytes(data[14:]),
        )

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST_MAC
