"""ARP cache (with static entries, as the paper's setup uses).

Section III-B1: "Entries are added to the operating system's routing
table and ARP cache to facilitate routing packets from the test
application to the FPGA" -- i.e. resolution never goes to the wire
during the measurements.  Dynamic resolution (request/reply frames) is
implemented too so the stack is complete for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.host.netstack.ethernet import ETH_P_ARP, EthernetFrame

ARP_HEADER_SIZE = 28
ARP_OP_REQUEST = 1
ARP_OP_REPLY = 2


@dataclass(frozen=True)
class ArpPacket:
    """An ARP request/reply for IPv4 over Ethernet."""

    operation: int
    sender_mac: bytes
    sender_ip: int
    target_mac: bytes
    target_ip: int

    def encode(self) -> bytes:
        buf = bytearray(ARP_HEADER_SIZE)
        buf[0:2] = (1).to_bytes(2, "big")  # htype: ethernet
        buf[2:4] = (0x0800).to_bytes(2, "big")  # ptype: IPv4
        buf[4] = 6  # hlen
        buf[5] = 4  # plen
        buf[6:8] = self.operation.to_bytes(2, "big")
        buf[8:14] = self.sender_mac
        buf[14:18] = self.sender_ip.to_bytes(4, "big")
        buf[18:24] = self.target_mac
        buf[24:28] = self.target_ip.to_bytes(4, "big")
        return bytes(buf)

    @classmethod
    def decode(cls, data: bytes) -> "ArpPacket":
        if len(data) < ARP_HEADER_SIZE:
            raise ValueError(f"ARP packet needs {ARP_HEADER_SIZE}B, got {len(data)}")
        return cls(
            operation=int.from_bytes(data[6:8], "big"),
            sender_mac=bytes(data[8:14]),
            sender_ip=int.from_bytes(data[14:18], "big"),
            target_mac=bytes(data[18:24]),
            target_ip=int.from_bytes(data[24:28], "big"),
        )


class ArpCache:
    """IP -> MAC neighbour cache."""

    def __init__(self) -> None:
        self._entries: Dict[int, bytes] = {}
        self._static: set[int] = set()

    def add_static(self, ip: int, mac: bytes) -> None:
        """Permanent entry (``ip neigh add ... nud permanent``)."""
        if len(mac) != 6:
            raise ValueError("MAC must be 6 bytes")
        self._entries[ip] = bytes(mac)
        self._static.add(ip)

    def learn(self, ip: int, mac: bytes) -> None:
        """Dynamic entry from received traffic (never downgrades a
        static entry)."""
        if ip not in self._static:
            self._entries[ip] = bytes(mac)

    def lookup(self, ip: int) -> Optional[bytes]:
        return self._entries.get(ip)

    def flush_dynamic(self) -> None:
        self._entries = {ip: mac for ip, mac in self._entries.items() if ip in self._static}

    def __len__(self) -> int:
        return len(self._entries)


def arp_request_frame(sender_mac: bytes, sender_ip: int, target_ip: int) -> EthernetFrame:
    """Broadcast who-has frame."""
    packet = ArpPacket(
        operation=ARP_OP_REQUEST,
        sender_mac=sender_mac,
        sender_ip=sender_ip,
        target_mac=b"\x00" * 6,
        target_ip=target_ip,
    )
    return EthernetFrame(
        dst=b"\xff" * 6, src=sender_mac, ethertype=ETH_P_ARP, payload=packet.encode()
    )


def arp_reply_frame(sender_mac: bytes, sender_ip: int, target_mac: bytes,
                    target_ip: int) -> EthernetFrame:
    """Unicast is-at frame."""
    packet = ArpPacket(
        operation=ARP_OP_REPLY,
        sender_mac=sender_mac,
        sender_ip=sender_ip,
        target_mac=target_mac,
        target_ip=target_ip,
    )
    return EthernetFrame(
        dst=target_mac, src=sender_mac, ethertype=ETH_P_ARP, payload=packet.encode()
    )
