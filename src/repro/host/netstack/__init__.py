"""Host network stack: Ethernet/ARP/IPv4/UDP, net devices with NAPI,
and BSD-style UDP sockets."""

from repro.host.netstack.arp import (
    ARP_OP_REPLY,
    ARP_OP_REQUEST,
    ArpCache,
    ArpPacket,
    arp_reply_frame,
    arp_request_frame,
)
from repro.host.netstack.checksum import (
    internet_checksum,
    ones_complement_sum,
    pseudo_header,
    verify_checksum,
)
from repro.host.netstack.ethernet import (
    BROADCAST_MAC,
    ETH_HEADER_SIZE,
    ETH_P_ARP,
    ETH_P_IP,
    EthernetFrame,
    mac_str,
    parse_mac,
)
from repro.host.netstack.ip import (
    IP_HEADER_SIZE,
    IPPROTO_UDP,
    Ipv4Header,
    Route,
    RoutingTable,
    ip_str,
    parse_ip,
)
from repro.host.netstack.netdev import (
    FEATURE_HW_CSUM,
    FEATURE_RX_CSUM_VALID,
    NAPI_WEIGHT,
    NapiContext,
    NetDevice,
)
from repro.host.netstack.skb import (
    CHECKSUM_NONE,
    CHECKSUM_PARTIAL,
    CHECKSUM_UNNECESSARY,
    Skb,
)
from repro.host.netstack.sockets import SocketError, UdpSocket
from repro.host.netstack.stack import NetworkStack, StackError
from repro.host.netstack.udp import (
    UDP_HEADER_SIZE,
    UdpHeader,
    udp_checksum,
    udp_checksum_valid,
    udp_datagram,
)

__all__ = [
    "ARP_OP_REPLY",
    "ARP_OP_REQUEST",
    "ArpCache",
    "ArpPacket",
    "BROADCAST_MAC",
    "CHECKSUM_NONE",
    "CHECKSUM_PARTIAL",
    "CHECKSUM_UNNECESSARY",
    "ETH_HEADER_SIZE",
    "ETH_P_ARP",
    "ETH_P_IP",
    "EthernetFrame",
    "FEATURE_HW_CSUM",
    "FEATURE_RX_CSUM_VALID",
    "IP_HEADER_SIZE",
    "IPPROTO_UDP",
    "Ipv4Header",
    "NAPI_WEIGHT",
    "NapiContext",
    "NetDevice",
    "NetworkStack",
    "Route",
    "RoutingTable",
    "Skb",
    "SocketError",
    "StackError",
    "UDP_HEADER_SIZE",
    "UdpHeader",
    "UdpSocket",
    "arp_reply_frame",
    "arp_request_frame",
    "internet_checksum",
    "ip_str",
    "mac_str",
    "ones_complement_sum",
    "parse_ip",
    "parse_mac",
    "pseudo_header",
    "udp_checksum",
    "udp_checksum_valid",
    "udp_datagram",
    "verify_checksum",
]
