"""UDP sockets: the C socket API the paper's test application uses.

Section III-B1: "The user space test application uses the C socket
programming API to send packets to the FPGA."  :class:`UdpSocket`
provides ``sendto``/``recvfrom`` as process generators with the syscall
costs around the stack work.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Generator, Optional, Tuple

from repro.host.netstack.stack import NetworkStack
from repro.sim.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.kernel import HostKernel

#: (payload, (src_ip, src_port))
Datagram = Tuple[bytes, Tuple[int, int]]


class SocketError(RuntimeError):
    """Bind conflicts and misuse."""


class UdpSocket:
    """An AF_INET/SOCK_DGRAM socket."""

    def __init__(self, kernel: "HostKernel", stack: NetworkStack) -> None:
        self.kernel = kernel
        self.stack = stack
        self.local_port: Optional[int] = None
        self._rx_queue: Deque[Datagram] = deque()
        self._rx_waiter: Optional[Event] = None
        self.rx_enqueued = 0
        self.rx_dropped = 0
        #: SO_RCVBUF analogue, in datagrams.
        self.rx_queue_limit = 1024

    def bind(self, port: int) -> None:
        """Bind the local port (registers with the stack's UDP demux)."""
        if self.local_port is not None:
            raise SocketError("socket already bound")
        self.stack.bind_udp(port, self)
        self.local_port = port

    def close(self) -> None:
        if self.local_port is not None:
            self.stack.unbind_udp(self.local_port)
            self.local_port = None

    # -- stack-side delivery -------------------------------------------------------

    def deliver(self, payload: bytes, source: Tuple[int, int]) -> None:
        """Called by the stack's UDP demux (already in softirq context)."""
        if len(self._rx_queue) >= self.rx_queue_limit:
            self.rx_dropped += 1
            return
        self._rx_queue.append((payload, source))
        self.rx_enqueued += 1
        if self._rx_waiter is not None:
            waiter, self._rx_waiter = self._rx_waiter, None
            waiter.trigger(None)

    # -- application API -------------------------------------------------------------

    def sendto(self, payload: bytes, dst_ip: int, dst_port: int) -> Generator[Any, Any, int]:
        """``sendto(fd, buf, n, 0, addr)``; returns bytes sent."""
        if self.local_port is None:
            raise SocketError("sendto on unbound socket (bind first)")
        kernel = self.kernel
        yield kernel.cpu("syscall_entry")
        yield kernel.cpu("sock_lookup")
        yield from self.stack.udp_output(self.local_port, dst_ip, dst_port, payload)
        yield kernel.cpu("syscall_exit")
        return len(payload)

    def recvfrom(self) -> Generator[Any, Any, Datagram]:
        """``recvfrom(fd, ...)``; blocks until a datagram arrives."""
        if self.local_port is None:
            raise SocketError("recvfrom on unbound socket (bind first)")
        kernel = self.kernel
        yield kernel.cpu("syscall_entry")
        yield kernel.cpu("sock_lookup")
        while not self._rx_queue:
            if self._rx_waiter is not None:
                raise SocketError("concurrent recvfrom on one socket not supported")
            self._rx_waiter = Event(name="udp-recv")
            yield from kernel.block_on(self._rx_waiter)
        payload, source = self._rx_queue.popleft()
        yield kernel.copy(len(payload))  # copy_to_user
        yield kernel.cpu("syscall_exit")
        return payload, source

    @property
    def rx_pending(self) -> int:
        return len(self._rx_queue)
