"""UDP sockets: the C socket API the paper's test application uses.

Section III-B1: "The user space test application uses the C socket
programming API to send packets to the FPGA."  :class:`UdpSocket`
provides ``sendto``/``recvfrom`` as process generators with the syscall
costs around the stack work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional, Tuple

from repro.health.bounded import BoundedQueue
from repro.host.netstack.stack import NetworkStack
from repro.sim.event import Event, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.kernel import HostKernel

#: (payload, (src_ip, src_port))
Datagram = Tuple[bytes, Tuple[int, int]]


class SocketError(RuntimeError):
    """Bind conflicts and misuse."""


class UdpSocket:
    """An AF_INET/SOCK_DGRAM socket."""

    def __init__(self, kernel: "HostKernel", stack: NetworkStack) -> None:
        self.kernel = kernel
        self.stack = stack
        self.local_port: Optional[int] = None
        #: SO_RCVBUF analogue: a bounded backlog with a counted drop
        #: reason (softirq context, so the policy is always tail-drop).
        self._rx_queue = BoundedQueue(
            capacity=1024, name="udp-rx", drop_reason="socket_rx_overflow"
        )
        self._rx_waiter: Optional[Event] = None
        self.rx_enqueued = 0

    def bind(self, port: int) -> None:
        """Bind the local port (registers with the stack's UDP demux)."""
        if self.local_port is not None:
            raise SocketError("socket already bound")
        self.stack.bind_udp(port, self)
        self.local_port = port

    def close(self) -> None:
        if self.local_port is not None:
            self.stack.unbind_udp(self.local_port)
            self.local_port = None

    # -- stack-side delivery -------------------------------------------------------

    @property
    def rx_queue_limit(self) -> int:
        return self._rx_queue.capacity or 0

    @rx_queue_limit.setter
    def rx_queue_limit(self, limit: int) -> None:
        self._rx_queue.capacity = limit

    @property
    def rx_dropped(self) -> int:
        """Datagrams tail-dropped at the full backlog."""
        return self._rx_queue.dropped_total

    @property
    def rx_drop_reasons(self) -> dict:
        return dict(self._rx_queue.drops)

    def deliver(self, payload: bytes, source: Tuple[int, int]) -> None:
        """Called by the stack's UDP demux (already in softirq context).

        This is the data plane's one RX copy (the ``copy_to_user``
        analogue): upstream layers hand down views of the driver's
        frame snapshot, and the datagram is materialized here because
        the application may hold it indefinitely while the backing
        buffer is recycled.
        """
        if not isinstance(payload, bytes):
            payload = bytes(payload)
        if not self._rx_queue.try_push((payload, source)):
            return
        self.rx_enqueued += 1
        if self._rx_waiter is not None:
            waiter, self._rx_waiter = self._rx_waiter, None
            waiter.trigger(None)

    # -- application API -------------------------------------------------------------

    def sendto(self, payload: bytes, dst_ip: int, dst_port: int) -> Generator[Any, Any, int]:
        """``sendto(fd, buf, n, 0, addr)``; returns bytes sent."""
        if self.local_port is None:
            raise SocketError("sendto on unbound socket (bind first)")
        kernel = self.kernel
        yield kernel.cpu("syscall_entry")
        yield kernel.cpu("sock_lookup")
        yield from self.stack.udp_output(self.local_port, dst_ip, dst_port, payload)
        yield kernel.cpu("syscall_exit")
        return len(payload)

    def recvfrom(
        self, timeout_ps: Optional[int] = None
    ) -> Generator[Any, Any, Optional[Datagram]]:
        """``recvfrom(fd, ...)``; blocks until a datagram arrives.

        With *timeout_ps* (the ``SO_RCVTIMEO`` analogue) the wait is
        bounded: ``None`` is returned if nothing arrived in time, so an
        overload-aware caller can record the loss and move on instead
        of stalling forever.  The default (no timeout) is byte-for-byte
        the historical blocking behaviour.
        """
        if self.local_port is None:
            raise SocketError("recvfrom on unbound socket (bind first)")
        kernel = self.kernel
        yield kernel.cpu("syscall_entry")
        yield kernel.cpu("sock_lookup")
        deadline: Optional[Timeout] = None
        while not self._rx_queue:
            if self._rx_waiter is not None:
                raise SocketError("concurrent recvfrom on one socket not supported")
            self._rx_waiter = Event(name="udp-recv")
            if timeout_ps is None:
                yield from kernel.block_on(self._rx_waiter)
            else:
                from repro.sim.event import AnyOf

                deadline = kernel.sim.timeout(timeout_ps, name="udp-recv-timeout")
                index, _ = yield AnyOf([self._rx_waiter, deadline])
                yield kernel.cpu("task_wakeup")
                if index == 1 and not self._rx_queue:
                    # Timed out with nothing delivered: unhook the waiter.
                    self._rx_waiter = None
                    yield kernel.cpu("syscall_exit")
                    return None
        payload, source = self._rx_queue.popleft()
        yield kernel.copy(len(payload))  # copy_to_user
        yield kernel.cpu("syscall_exit")
        return payload, source

    @property
    def rx_pending(self) -> int:
        return len(self._rx_queue)
