"""UDP: header codec with pseudo-header checksum."""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.netstack.checksum import internet_checksum, ones_complement_sum, pseudo_header
from repro.host.netstack.ip import IPPROTO_UDP

UDP_HEADER_SIZE = 8


@dataclass(frozen=True)
class UdpHeader:
    src_port: int
    dst_port: int
    length: int
    checksum: int = 0

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"bad port {port}")

    def encode(self) -> bytes:
        buf = bytearray(UDP_HEADER_SIZE)
        buf[0:2] = self.src_port.to_bytes(2, "big")
        buf[2:4] = self.dst_port.to_bytes(2, "big")
        buf[4:6] = self.length.to_bytes(2, "big")
        buf[6:8] = self.checksum.to_bytes(2, "big")
        return bytes(buf)

    @classmethod
    def decode(cls, data: bytes) -> "UdpHeader":
        if len(data) < UDP_HEADER_SIZE:
            raise ValueError(f"UDP header needs {UDP_HEADER_SIZE}B, got {len(data)}")
        return cls(
            src_port=int.from_bytes(data[0:2], "big"),
            dst_port=int.from_bytes(data[2:4], "big"),
            length=int.from_bytes(data[4:6], "big"),
            checksum=int.from_bytes(data[6:8], "big"),
        )


def udp_datagram(
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    payload: bytes,
    compute_checksum: bool = True,
) -> bytes:
    """Build header+payload with (optional) checksum.

    ``compute_checksum=False`` leaves the field zero -- the state in
    which a checksum-offloading stack hands the datagram to hardware
    (the FPGA then fills it, per the paper's offload discussion).
    """
    length = UDP_HEADER_SIZE + len(payload)
    header = UdpHeader(src_port=src_port, dst_port=dst_port, length=length)
    raw = header.encode() + payload
    if compute_checksum:
        csum = udp_checksum(src_ip, dst_ip, raw)
        raw = raw[:6] + csum.to_bytes(2, "big") + raw[8:]
    return raw


def udp_checksum(src_ip: int, dst_ip: int, datagram: bytes) -> int:
    """Checksum over pseudo-header + datagram (checksum field zeroed).

    Returns 0xFFFF instead of 0, per RFC 768 (0 means "no checksum").
    """
    # b"".join accepts memoryviews, so the RX path can pass datagram
    # views straight from the frame buffer without materializing first.
    zeroed = b"".join((datagram[:6], b"\x00\x00", datagram[8:]))
    csum = internet_checksum(pseudo_header(src_ip, dst_ip, IPPROTO_UDP, len(datagram)) + zeroed)
    return csum if csum != 0 else 0xFFFF


def udp_checksum_valid(src_ip: int, dst_ip: int, datagram: bytes) -> bool:
    """Verify a received datagram's checksum (0 = not used = valid)."""
    header = UdpHeader.decode(datagram)
    if header.checksum == 0:
        return True
    total = ones_complement_sum(
        b"".join((pseudo_header(src_ip, dst_ip, IPPROTO_UDP, len(datagram)), datagram))
    )
    return total == 0xFFFF
