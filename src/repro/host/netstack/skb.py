"""Socket buffers.

A tiny analogue of ``struct sk_buff``: the frame bytes plus the checksum
-offload metadata the stack and drivers exchange.  The two states that
matter to the experiments:

* TX with hardware checksum offload: ``ip_summed == "partial"`` and the
  device (FPGA) fills the checksum -- the virtio-net path when
  VIRTIO_NET_F_CSUM was negotiated.
* RX with device-validated checksum: ``ip_summed == "unnecessary"`` --
  set when the device's virtio_net_hdr carried DATA_VALID, saving the
  host a software verify pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field


#: skb.ip_summed values (mirroring the kernel's CHECKSUM_* constants).
CHECKSUM_NONE = "none"
CHECKSUM_PARTIAL = "partial"
CHECKSUM_UNNECESSARY = "unnecessary"


@dataclass
class Skb:
    """One packet in flight through the host stack.

    ``data`` may be any bytes-like object (``bytes`` or a read-only
    ``memoryview`` of the driver's frame snapshot).  Views are only
    guaranteed valid while the skb is being processed -- anything that
    must outlive stack processing (socket delivery) materializes its
    own copy.
    """

    data: bytes
    protocol: int = 0
    ip_summed: str = CHECKSUM_NONE
    #: For CHECKSUM_PARTIAL: offset of the L4 header within ``data``
    #: where checksumming starts, and offset of the checksum field
    #: relative to csum_start.
    csum_start: int = 0
    csum_offset: int = 0
    device: str = ""
    detail: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.data)
