"""IPv4: header codec and routing table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.host.netstack.checksum import internet_checksum, verify_checksum

IP_HEADER_SIZE = 20
IPPROTO_UDP = 17
IPPROTO_ICMP = 1
DEFAULT_TTL = 64


def ip_str(ip: int) -> str:
    return ".".join(str((ip >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ip(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {text!r}")
    value = 0
    for p in parts:
        octet = int(p)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad IPv4 address {text!r}")
        value = (value << 8) | octet
    return value


@dataclass(frozen=True)
class Ipv4Header:
    """IPv4 header (no options)."""

    src: int
    dst: int
    protocol: int
    total_length: int
    ttl: int = DEFAULT_TTL
    identification: int = 0
    checksum: int = 0

    def encode(self, compute_checksum: bool = True) -> bytes:
        buf = bytearray(IP_HEADER_SIZE)
        buf[0] = 0x45  # version 4, IHL 5
        buf[2:4] = self.total_length.to_bytes(2, "big")
        buf[4:6] = self.identification.to_bytes(2, "big")
        buf[8] = self.ttl
        buf[9] = self.protocol
        buf[12:16] = self.src.to_bytes(4, "big")
        buf[16:20] = self.dst.to_bytes(4, "big")
        csum = internet_checksum(bytes(buf)) if compute_checksum else self.checksum
        buf[10:12] = csum.to_bytes(2, "big")
        return bytes(buf)

    @classmethod
    def decode(cls, data: bytes) -> "Ipv4Header":
        if len(data) < IP_HEADER_SIZE:
            raise ValueError(f"IPv4 header needs {IP_HEADER_SIZE}B, got {len(data)}")
        if data[0] >> 4 != 4:
            raise ValueError(f"not IPv4 (version {data[0] >> 4})")
        ihl = (data[0] & 0xF) * 4
        if ihl != IP_HEADER_SIZE:
            raise ValueError("IPv4 options not supported")
        return cls(
            src=int.from_bytes(data[12:16], "big"),
            dst=int.from_bytes(data[16:20], "big"),
            protocol=data[9],
            total_length=int.from_bytes(data[2:4], "big"),
            ttl=data[8],
            identification=int.from_bytes(data[4:6], "big"),
            checksum=int.from_bytes(data[10:12], "big"),
        )

    def header_valid(self, raw_header: bytes) -> bool:
        return verify_checksum(raw_header[:IP_HEADER_SIZE])


@dataclass(frozen=True)
class Route:
    """One routing-table entry."""

    network: int
    prefix_len: int
    device: str
    gateway: int = 0  # 0 = directly connected
    src_ip: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"bad prefix length {self.prefix_len}")

    @property
    def mask(self) -> int:
        if self.prefix_len == 0:
            return 0
        return (0xFFFF_FFFF << (32 - self.prefix_len)) & 0xFFFF_FFFF

    def matches(self, dst: int) -> bool:
        return (dst & self.mask) == (self.network & self.mask)


@dataclass
class RoutingTable:
    """Longest-prefix-match routing.

    The paper's setup adds an explicit entry so test traffic routes to
    the FPGA NIC (Section III-B1: "Entries are added to the operating
    system's routing table ... to facilitate routing packets from the
    test application to the FPGA").
    """

    routes: List[Route] = field(default_factory=list)

    def add(self, route: Route) -> None:
        self.routes.append(route)

    def lookup(self, dst: int) -> Optional[Route]:
        best: Optional[Route] = None
        for route in self.routes:
            if route.matches(dst) and (best is None or route.prefix_len > best.prefix_len):
                best = route
        return best

    def next_hop(self, dst: int) -> Optional[Tuple[str, int]]:
        """(device name, neighbour IP to ARP for)."""
        route = self.lookup(dst)
        if route is None:
            return None
        neighbour = route.gateway if route.gateway else dst
        return route.device, neighbour
