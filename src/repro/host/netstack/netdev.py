"""Network devices and NAPI.

:class:`NetDevice` is the contract between the stack and a NIC driver
(the virtio-net front-end binds here): a transmit hook plus link
metadata and offload feature flags.

:class:`NapiContext` models New-API receive processing: the interrupt
handler disables the device's queue interrupts and *schedules* NAPI; the
poll callback then harvests packets in softirq context and re-enables
interrupts when it goes idle.  This is why a virtio-net RX burst costs
one interrupt, not one per packet -- part of the software-cost asymmetry
the paper measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional, Set

from repro.host.netstack.skb import Skb
from repro.sim.component import Component

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.kernel import HostKernel

#: Offload feature flags (subset of NETIF_F_*).
FEATURE_HW_CSUM = "hw-csum"
FEATURE_RX_CSUM_VALID = "rx-csum-valid"

#: Packets one NAPI poll may harvest before yielding the CPU.
NAPI_WEIGHT = 64

XmitFn = Callable[[Skb], Generator[Any, Any, None]]
PollFn = Callable[[int], Generator[Any, Any, int]]


class NetDevice(Component):
    """A registered network interface."""

    def __init__(
        self,
        kernel: "HostKernel",
        ifname: str,
        mac: bytes,
        mtu: int = 1500,
        features: Optional[Set[str]] = None,
        parent: Optional[Component] = None,
    ) -> None:
        super().__init__(kernel.sim, ifname, parent=parent)
        if len(mac) != 6:
            raise ValueError("MAC must be 6 bytes")
        self.kernel = kernel
        self.ifname = ifname
        self.mac = bytes(mac)
        self.mtu = mtu
        self.features: Set[str] = set(features or ())
        self.ip: int = 0
        self._xmit: Optional[XmitFn] = None
        self.tx_packets = 0
        self.rx_packets = 0
        #: Optional qdisc gate installed by the overload layer: when it
        #: returns False the frame is tail-dropped here with a counted
        #: reason instead of overrunning the driver's ring.
        self.can_xmit: Optional[Callable[[], bool]] = None
        #: reason -> frames dropped on the transmit path.
        self.tx_dropped: dict = {}

    def set_xmit(self, xmit: XmitFn) -> None:
        """Install the driver's ndo_start_xmit."""
        self._xmit = xmit

    def has_feature(self, feature: str) -> bool:
        return feature in self.features

    def count_tx_drop(self, reason: str) -> None:
        self.tx_dropped[reason] = self.tx_dropped.get(reason, 0) + 1

    def start_xmit(self, skb: Skb) -> Generator[Any, Any, bool]:
        """Hand a frame to the driver (stack calls with ``yield from``).

        Returns ``True`` if the driver took the frame, ``False`` if the
        qdisc gate tail-dropped it (counted under ``txq_full``)."""
        if self._xmit is None:
            raise RuntimeError(f"device {self.ifname!r} has no transmit hook")
        if self.can_xmit is not None and not self.can_xmit():
            self.count_tx_drop("txq_full")
            self.trace("tx-drop-qdisc", bytes=len(skb.data))
            return False
        self.tx_packets += 1
        skb.device = self.ifname
        yield from self._xmit(skb)
        return True


class NapiContext:
    """One NAPI instance (one RX queue's poll machinery)."""

    def __init__(
        self,
        kernel: "HostKernel",
        device: NetDevice,
        poll: PollFn,
        irq_enable: Callable[[], None],
        irq_disable: Callable[[], None],
        weight: int = NAPI_WEIGHT,
        recheck: Callable[[], bool] | None = None,
    ) -> None:
        self.kernel = kernel
        self.device = device
        self.poll = poll
        self.irq_enable = irq_enable
        self.irq_disable = irq_disable
        self.weight = weight
        #: Post-complete race check: after re-enabling interrupts the
        #: driver must look at the ring once more, because a completion
        #: that landed while interrupts were suppressed raises nothing
        #: (virtio spec 2.7.9 / Linux virtqueue_napi_complete).
        self.recheck = recheck
        self.scheduled = False
        self.polls = 0
        self.packets_harvested = 0
        self.recheck_rearms = 0

    def schedule(self) -> None:
        """From hard-IRQ context: disable queue interrupts and queue the
        poll into softirq.  Idempotent while already scheduled."""
        if self.scheduled:
            return
        self.scheduled = True
        self.irq_disable()
        self.kernel.irqc.raise_softirq(self._run(), name=f"napi-{self.device.ifname}")

    def _run(self) -> Generator[Any, Any, None]:
        yield self.kernel.cpu("napi_poll_entry")
        while True:
            self.polls += 1
            harvested = yield from self.poll(self.weight)
            self.packets_harvested += harvested
            if harvested < self.weight:
                # Ring drained: napi_complete_done -> re-enable interrupts.
                self.irq_enable()
                if self.recheck is not None and self.recheck():
                    # A completion raced the re-enable; poll again.
                    self.recheck_rearms += 1
                    self.irq_disable()
                    yield self.kernel.cpu("napi_poll_entry")
                    continue
                self.scheduled = False
                return
            # Full budget consumed: stay scheduled, let others run.
            yield self.kernel.cpu("softirq_schedule")
