"""The IP/UDP stack tying devices, routing, ARP, and sockets together.

Transmit path (:meth:`NetworkStack.udp_output`) and receive path
(:meth:`NetworkStack.netif_receive`) charge per-layer CPU costs from the
kernel's cost model at the same places the Linux stack spends them:
socket lookup, skb allocation, UDP/IP header construction, route and
neighbour resolution, device queueing on the way down; netif_receive,
IP validation, UDP demux and socket enqueue on the way up.

Checksum handling honours device offload features: with a hw-csum
device the UDP checksum is *not* computed in software -- the skb goes
out CHECKSUM_PARTIAL and the FPGA fills it in (Section III-A), which is
one of the semantic benefits the paper highlights.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, Optional

from repro.host.netstack.arp import (
    ARP_OP_REPLY,
    ARP_OP_REQUEST,
    ArpCache,
    ArpPacket,
    arp_reply_frame,
)
from repro.host.netstack.ethernet import ETH_HEADER_SIZE, ETH_P_ARP, ETH_P_IP, EthernetFrame
from repro.host.netstack.ip import IP_HEADER_SIZE, IPPROTO_UDP, Ipv4Header, RoutingTable
from repro.host.netstack.netdev import FEATURE_HW_CSUM, NetDevice
from repro.host.netstack.skb import CHECKSUM_PARTIAL, CHECKSUM_UNNECESSARY, Skb
from repro.host.netstack.udp import UDP_HEADER_SIZE, UdpHeader, udp_checksum, udp_datagram
from repro.sim.component import Component

if TYPE_CHECKING:  # pragma: no cover
    from repro.host.kernel import HostKernel
    from repro.host.netstack.sockets import UdpSocket


class StackError(RuntimeError):
    """Unroutable destination, port conflicts, etc."""


class NetworkStack(Component):
    """The host's layer-2/3/4 machinery."""

    def __init__(self, kernel: "HostKernel", parent: Optional[Component] = None) -> None:
        super().__init__(kernel.sim, "netstack", parent=parent)
        self.kernel = kernel
        self.devices: Dict[str, NetDevice] = {}
        self.routes = RoutingTable()
        self.arp = ArpCache()
        self._udp_ports: Dict[int, "UdpSocket"] = {}
        self._ip_id = 0
        self.stats: Dict[str, int] = {
            "udp_tx": 0,
            "udp_rx": 0,
            "tx_drop_qdisc": 0,
            "rx_drop_no_socket": 0,
            "rx_drop_bad_csum": 0,
            "rx_drop_ethertype": 0,
            "rx_drop_proto": 0,
            "arp_rx": 0,
        }

    # -- configuration --------------------------------------------------------

    def register_device(self, device: NetDevice, ip: int) -> None:
        if device.ifname in self.devices:
            raise StackError(f"device {device.ifname!r} already registered")
        self.devices[device.ifname] = device
        device.ip = ip

    def bind_udp(self, port: int, socket: "UdpSocket") -> None:
        if port in self._udp_ports:
            raise StackError(f"UDP port {port} already bound")
        self._udp_ports[port] = socket

    def unbind_udp(self, port: int) -> None:
        self._udp_ports.pop(port, None)

    def next_ip_id(self) -> int:
        self._ip_id = (self._ip_id + 1) & 0xFFFF
        return self._ip_id

    # -- transmit path ---------------------------------------------------------------

    def udp_output(
        self,
        src_port: int,
        dst_ip: int,
        dst_port: int,
        payload: bytes,
    ) -> Generator[Any, Any, None]:
        """Send one UDP datagram (``yield from`` within a process)."""
        kernel = self.kernel
        route = self.routes.lookup(dst_ip)
        if route is None:
            raise StackError(f"no route to {dst_ip:#010x}")
        device = self.devices.get(route.device)
        if device is None:
            raise StackError(f"route names unknown device {route.device!r}")
        src_ip = route.src_ip or device.ip

        yield kernel.cpu("skb_alloc")
        yield kernel.copy(len(payload))  # copy_from_user into the skb

        # UDP layer.
        yield kernel.cpu("udp_tx")
        offload = device.has_feature(FEATURE_HW_CSUM)
        datagram = udp_datagram(
            src_ip, dst_ip, src_port, dst_port, payload, compute_checksum=not offload
        )
        if not offload:
            yield kernel.checksum(len(datagram))

        # IP layer.
        yield kernel.cpu("ip_tx")
        total_length = IP_HEADER_SIZE + len(datagram)
        ip_header = Ipv4Header(
            src=src_ip,
            dst=dst_ip,
            protocol=IPPROTO_UDP,
            total_length=total_length,
            identification=self.next_ip_id(),
        )

        # Neighbour resolution (static cache hit in the paper's setup).
        yield kernel.cpu("neigh_resolve")
        neighbour = route.gateway if route.gateway else dst_ip
        dst_mac = self.arp.lookup(neighbour)
        if dst_mac is None:
            raise StackError(
                f"no ARP entry for {neighbour:#010x} "
                "(the paper's setup pre-populates the cache)"
            )

        frame = EthernetFrame(
            dst=dst_mac,
            src=device.mac,
            ethertype=ETH_P_IP,
            payload=ip_header.encode() + datagram,
        )
        skb = Skb(data=frame.encode(), protocol=ETH_P_IP)
        if offload:
            skb.ip_summed = CHECKSUM_PARTIAL
            skb.csum_start = ETH_HEADER_SIZE + IP_HEADER_SIZE
            skb.csum_offset = 6  # UDP checksum field offset
        yield kernel.cpu("dev_xmit")
        self.trace("udp-tx", dst=dst_ip, port=dst_port, bytes=len(payload))
        sent = yield from device.start_xmit(skb)
        if sent is False:
            # Qdisc gate tail-dropped the frame: counted, never silent.
            self.stats["tx_drop_qdisc"] += 1
        else:
            self.stats["udp_tx"] += 1

    # -- receive path ----------------------------------------------------------------

    def netif_receive(self, device: NetDevice, skb: Skb) -> Generator[Any, Any, None]:
        """Process one received frame (driver calls from NAPI poll)."""
        kernel = self.kernel
        device.rx_packets += 1
        yield kernel.cpu("netif_receive")
        # Zero-copy parse: the UDP hot path walks read-only views over
        # skb.data (itself a view of the driver's private RX snapshot)
        # instead of materializing per-layer payload copies.  The skb
        # owns the backing bytes for the whole softirq; the single
        # copy happens at the socket boundary (UdpSocket.deliver).
        data = skb.data
        if len(data) < ETH_HEADER_SIZE:
            raise ValueError(f"frame too short: {len(data)}B")
        ethertype = int.from_bytes(data[12:14], "big")
        if ethertype == ETH_P_ARP:
            yield from self._receive_arp(device, EthernetFrame.decode(data))
            return
        if ethertype != ETH_P_IP:
            self.stats["rx_drop_ethertype"] += 1
            self.trace("rx-drop-ethertype", ethertype=ethertype)
            return

        yield kernel.cpu("ip_rx")
        packet = memoryview(data)[ETH_HEADER_SIZE:]
        ip_header = Ipv4Header.decode(packet)
        if ip_header.protocol != IPPROTO_UDP:
            self.stats["rx_drop_proto"] += 1
            self.trace("rx-drop-proto", proto=ip_header.protocol)
            return

        yield kernel.cpu("udp_rx")
        # total_length bounds the datagram (frames may carry padding).
        datagram = packet[IP_HEADER_SIZE : ip_header.total_length]
        udp_header = UdpHeader.decode(datagram)
        if skb.ip_summed != CHECKSUM_UNNECESSARY and udp_header.checksum != 0:
            yield kernel.checksum(len(datagram))
            if udp_checksum(ip_header.src, ip_header.dst, datagram) != udp_header.checksum:
                self.stats["rx_drop_bad_csum"] += 1
                self.trace("rx-drop-csum", port=udp_header.dst_port)
                return
        socket = self._udp_ports.get(udp_header.dst_port)
        if socket is None:
            self.stats["rx_drop_no_socket"] += 1
            self.trace("rx-drop-no-socket", port=udp_header.dst_port)
            return
        yield kernel.cpu("sock_enqueue")
        payload = datagram[UDP_HEADER_SIZE : udp_header.length]
        self.stats["udp_rx"] += 1
        self.trace("udp-rx", src=ip_header.src, port=udp_header.src_port, bytes=len(payload))
        socket.deliver(payload, (ip_header.src, udp_header.src_port))

    def _receive_arp(self, device: NetDevice, frame: EthernetFrame) -> Generator[Any, Any, None]:
        self.stats["arp_rx"] += 1
        packet = ArpPacket.decode(frame.payload)
        self.arp.learn(packet.sender_ip, packet.sender_mac)
        if packet.operation == ARP_OP_REQUEST and packet.target_ip == device.ip:
            reply = arp_reply_frame(device.mac, device.ip, packet.sender_mac, packet.sender_ip)
            yield self.kernel.cpu("dev_xmit")
            yield from device.start_xmit(Skb(data=reply.encode(), protocol=ETH_P_ARP))
        elif packet.operation == ARP_OP_REPLY:
            self.trace("arp-reply", ip=packet.sender_ip)
