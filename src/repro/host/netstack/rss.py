"""RSS-style flow hashing for multi-queue virtio-net.

Receive-side scaling spreads flows across queue pairs by hashing the
flow tuple and reducing the hash modulo the number of enabled pairs.
Both ends use the same function here -- the device steers inbound
frames to an RX queue, the driver steers outbound frames to the
matching TX queue -- so a flow stays on one queue pair in both
directions (cache/IRQ affinity, and in-order delivery per flow).

The hash is FNV-1a over the IPv4/UDP 4-tuple.  Real NICs use Toeplitz
with a random key; FNV-1a keeps the same properties that matter for the
model (deterministic, well-mixed, cheap) without carting a 40-byte key
through the config space.  Determinism is a feature: the same frame
always lands on the same queue, in the simulator and across processes,
which is what the reproducibility harness needs.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: FNV-1a 32-bit parameters.
_FNV_OFFSET = 0x811C9DC5
_FNV_PRIME = 0x01000193

ETHERTYPE_IPV4 = 0x0800
IPPROTO_UDP = 17


def fnv1a(data: bytes) -> int:
    """FNV-1a 32-bit hash of *data*."""
    acc = _FNV_OFFSET
    for byte in data:
        acc = ((acc ^ byte) * _FNV_PRIME) & 0xFFFF_FFFF
    return acc


def flow_hash(src_ip: int, dst_ip: int, src_port: int, dst_port: int) -> int:
    """Deterministic 32-bit hash of a UDP 4-tuple."""
    key = (
        src_ip.to_bytes(4, "big")
        + dst_ip.to_bytes(4, "big")
        + src_port.to_bytes(2, "big")
        + dst_port.to_bytes(2, "big")
    )
    return fnv1a(key)


def parse_udp_flow(frame: bytes) -> Optional[Tuple[int, int, int, int]]:
    """Extract (src_ip, dst_ip, src_port, dst_port) from an Ethernet
    frame carrying IPv4/UDP; ``None`` for anything else (ARP,
    non-UDP, truncated) -- those flows fall back to queue 0."""
    if len(frame) < 34:  # eth(14) + minimal ipv4(20)
        return None
    if int.from_bytes(frame[12:14], "big") != ETHERTYPE_IPV4:
        return None
    ihl = (frame[14] & 0x0F) * 4
    if ihl < 20 or len(frame) < 14 + ihl + 4:
        return None
    if frame[23] != IPPROTO_UDP:
        return None
    src_ip = int.from_bytes(frame[26:30], "big")
    dst_ip = int.from_bytes(frame[30:34], "big")
    udp = 14 + ihl
    src_port = int.from_bytes(frame[udp : udp + 2], "big")
    dst_port = int.from_bytes(frame[udp + 2 : udp + 4], "big")
    return src_ip, dst_ip, src_port, dst_port


def steer(frame: bytes, queue_pairs: int) -> int:
    """Queue-pair index for *frame* under *queue_pairs* enabled pairs."""
    if queue_pairs <= 1:
        return 0
    flow = parse_udp_flow(frame)
    if flow is None:
        return 0
    return flow_hash(*flow) % queue_pairs
