"""The host kernel model.

:class:`HostKernel` is the hub the driver and network-stack models hang
off: it owns the cost model, the interrupt controller, DMA-able memory
allocation, the monotonic clock, and the two primitive operations every
software model uses:

* ``cpu(segment)`` -- sample the duration of a named software segment
  (nominal + body jitter + any Poisson interference stall) for the
  caller to ``yield``;
* ``mmio_read`` / ``mmio_write`` -- processor-initiated accesses to
  device BARs, with the fundamental asymmetry the paper's analysis
  leans on: writes are *posted* (cheap for the CPU, the paper's VirtIO
  driver needs exactly one per transfer -- "only a notification using a
  single I/O write is needed at runtime"), while reads stall the CPU for
  a full link round trip.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from repro.host.costs import CostModel, default_cost_model
from repro.host.irq import InterruptController
from repro.host.timekeeping import MonotonicClock
from repro.mem.dma import DmaAllocator, DmaBuffer
from repro.mem.physical import PhysicalMemory
from repro.pcie.root_complex import RootComplex
from repro.sim.component import Component
from repro.sim.event import Event
from repro.sim.time import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: Number of random draws pre-computed per refill.  The draw *sequence*
#: is identical for any block size (NumPy generators produce the same
#: stream whether drawn one at a time or in blocks), so this is purely a
#: speed/memory knob.
_BLOCK = 1024

#: Environment variable forcing the legacy per-draw scalar sampling path.
SCALAR_RNG_ENV = "REPRO_SIM_SCALAR_RNG"


class HostKernel(Component):
    """The simulated host OS."""

    def __init__(
        self,
        sim: "Simulator",
        rc: RootComplex,
        costs: Optional[CostModel] = None,
        name: str = "host",
        parent: Optional[Component] = None,
        tracer=None,
    ) -> None:
        super().__init__(sim, name, parent=parent, tracer=tracer)
        self.rc = rc
        self.memory: PhysicalMemory = rc.host_memory
        self.dma = DmaAllocator(self.memory)
        # Block-sampling state must exist before the ``costs`` setter
        # (which classifies the model and may invalidate multipliers).
        self._z_arr: Optional[np.ndarray] = None  # standard-normal block (cpu stream)
        self._z_list: list = []
        self._mults: list = []  # exp(sigma * z) per block entry (fast mode)
        self._z_i = 0
        self._us: list = []  # uniform block (interference stream)
        self._u_i = 0
        self.costs = costs if costs is not None else default_cost_model()  # property: also binds hot-path caches
        self.clock = MonotonicClock(sim)
        self.irqc = InterruptController(sim, self, parent=self)
        rc.set_msi_handler(self.irqc.deliver_msi)
        # ``cpu`` runs once per software segment of every simulated
        # round trip; resolve its two random streams once here instead
        # of re-deriving the component path and hitting the simulator's
        # stream table on every call.  The streams are name-derived, so
        # early creation does not change any draw sequence.
        self._cpu_rng = self.rng("cpu")
        self._interference_rng = self.rng("interference")
        #: Hypervisor interposer (:class:`repro.guest.Vmm`); ``None``
        #: means bare metal and the MMIO paths below run untouched.
        self.vmm = None

    # -- CPU time ---------------------------------------------------------------

    @property
    def costs(self) -> CostModel:
        return self._costs

    @costs.setter
    def costs(self, model: CostModel) -> None:
        # ``cpu`` runs once per software segment of every round trip;
        # bind the segment table and interference model here so the hot
        # path skips two attribute chains and a method call.  Tests that
        # swap the cost model (``kernel.costs = ...``) go through this
        # setter, keeping the caches coherent.
        self._costs = model
        self._segments = model.segments
        self._interference = model.interference
        itf = model.interference
        # Pre-resolved interference constants for the blocked stall path.
        # ``-1.0 / alpha`` and ``float(scale)`` are the exact values the
        # scalar ``InterferenceModel._component`` computes per call, so
        # results stay bit-identical.
        self._itf_params = (
            itf.rate_hz,
            float(itf.stall_scale),
            -1.0 / itf.stall_alpha,
            itf.stall_cap,
            itf.micro_rate_hz,
            float(itf.micro_scale),
            -1.0 / itf.micro_alpha,
            itf.micro_cap,
        )
        # Classify the model for block sampling.  Blocks replay the
        # *identical* draw sequence (``rng.normal(0, s)`` equals
        # ``s * rng.standard_normal()`` draw-for-draw, and a block
        # ``np.exp`` equals the scalar one elementwise), so fast/mixed
        # runs are byte-identical to scalar runs.  Segments with tails
        # interleave normals and uniforms on the cpu stream, which
        # blocks cannot reproduce; those models use the scalar path.
        segments = model.segments.values()
        from repro import env

        if env.scalar_rng() or any(m.tail_prob > 0.0 for m in segments):
            self._vector_mode = "scalar"
        else:
            sigmas = {m.jitter_sigma for m in segments if m.jitter_sigma > 0.0}
            if len(sigmas) <= 1:
                self._vector_mode = "fast"
                self._fast_sigma = sigmas.pop() if sigmas else 0.0
                if self._z_arr is not None:
                    # Multipliers depend on sigma: re-derive them from the
                    # already-drawn normals so the draw sequence is intact
                    # across a mid-run model swap.
                    self._mults = np.exp(self._fast_sigma * self._z_arr).tolist()
            else:
                self._vector_mode = "mixed"

    def _refill_z(self) -> None:
        z = self._cpu_rng.standard_normal(_BLOCK)
        self._z_arr = z
        self._z_list = z.tolist()
        if self._vector_mode == "fast":
            self._mults = np.exp(self._fast_sigma * z).tolist()
        self._z_i = 0

    def _refill_u(self) -> list:
        self._us = us = self._interference_rng.random(_BLOCK).tolist()
        self._u_i = 0
        return us

    def cpu(self, segment: str, extra_ps: SimTime = 0) -> SimTime:
        """Sampled duration of one software segment, to be yielded.

        ``extra_ps`` adds a deterministic data-dependent part (e.g. a
        per-byte copy cost) before interference is applied, so long
        copies are proportionally more likely to be preempted.
        """
        model = self._segments.get(segment)
        if model is None:
            raise KeyError(f"no cost segment named {segment!r}")
        mode = self._vector_mode
        if mode == "scalar":
            duration = model.sample(self._cpu_rng) + extra_ps
            stall = self._interference.stall_during(duration, self._interference_rng)
            if stall:
                self.trace("preemption", segment=segment, stall_ps=stall)
            return duration + stall
        sigma = model.jitter_sigma
        if sigma == 0.0:
            # No jitter and no tail: the scalar draw is exactly nominal.
            duration = model.nominal_ps + extra_ps
        else:
            i = self._z_i
            if i >= len(self._z_list):
                self._refill_z()
                i = 0
            self._z_i = i + 1
            if mode == "fast":
                value = float(model.nominal_ps) * self._mults[i]
            else:
                value = float(model.nominal_ps) * float(np.exp(sigma * self._z_list[i]))
            duration = max(0, round(value)) + extra_ps
        # Blocked interference: mirrors InterferenceModel.stall_during
        # (same expressions, same draw count) on pre-drawn uniforms.
        stall = 0
        if duration > 0:
            rate, scale, inv_alpha, cap, mrate, mscale, minv_alpha, mcap = self._itf_params
            us = self._us
            i = self._u_i
            if rate != 0.0:
                if i >= len(us):
                    us = self._refill_u()
                    i = 0
                u = us[i]
                i += 1
                if u < 1.0 - math.exp(-rate * duration / 1e12):
                    if i >= len(us):
                        us = self._refill_u()
                        i = 0
                    u = us[i]
                    i += 1
                    if u < 1e-12:
                        u = 1e-12
                    stall = min(round(scale * u ** inv_alpha), cap)
            if mrate != 0.0:
                if i >= len(us):
                    us = self._refill_u()
                    i = 0
                u = us[i]
                i += 1
                if u < 1.0 - math.exp(-mrate * duration / 1e12):
                    if i >= len(us):
                        us = self._refill_u()
                        i = 0
                    u = us[i]
                    i += 1
                    if u < 1e-12:
                        u = 1e-12
                    stall += min(round(mscale * u ** minv_alpha), mcap)
            self._u_i = i
        if stall:
            self.trace("preemption", segment=segment, stall_ps=stall)
        return duration + stall

    def copy(self, length: int) -> SimTime:
        """Duration of copying *length* bytes (copy_touch + per byte)."""
        return self.cpu("copy_touch", extra_ps=self.costs.copy_cost(length))

    def checksum(self, length: int) -> SimTime:
        """Duration of software-checksumming *length* bytes."""
        return self.cpu("copy_touch", extra_ps=self.costs.csum_cost(length))

    # -- MMIO --------------------------------------------------------------------

    def mmio_write(self, addr: int, data: bytes) -> SimTime:
        """Posted MMIO write: issues the TLP immediately; returns the
        CPU-side cost for the caller to yield.

        With a VMM attached the access traps (or takes the vhost
        doorbell shortcut); the VMM performs the identical write plus
        its world-switch costs."""
        if self.vmm is not None:
            return self.vmm.mmio_write(addr, data)
        self.rc.mmio_write(addr, data)
        return self.cpu("mmio_write_cpu")

    def mmio_read(self, addr: int, length: int) -> Generator[Any, Any, bytes]:
        """Non-posted MMIO read: the caller is stalled for the link
        round trip plus a small CPU-side overhead.  Usage::

            value = yield from kernel.mmio_read(addr, 4)

        With a VMM attached the read traps (reads always exit unless
        the window is direct-mapped in vhost mode)."""
        if self.vmm is not None:
            data = yield from self.vmm.mmio_read(addr, length)
            return data
        yield self.cpu("mmio_read_extra")
        data = yield self.rc.mmio_read(addr, length)
        return data

    # -- blocking / wakeup ------------------------------------------------------------

    def block_on(self, event: Event) -> Generator[Any, Any, Any]:
        """Block the calling task on *event*; on wake, charge the
        scheduler wakeup/context-switch cost before resuming.  Returns
        the event's value."""
        value = yield event
        yield self.cpu("task_wakeup")
        return value

    # -- memory ------------------------------------------------------------------------

    def alloc_dma(self, size: int, alignment: int = 64) -> DmaBuffer:
        """Allocate a coherent DMA buffer (rings, packet buffers)."""
        return self.dma.alloc(size, alignment)

    def gettime_ns(self) -> int:
        """``clock_gettime(CLOCK_MONOTONIC)`` value (caller should yield
        ``self.clock.call_cost()`` to account for the call)."""
        return self.clock.gettime_ns()
