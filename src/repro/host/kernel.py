"""The host kernel model.

:class:`HostKernel` is the hub the driver and network-stack models hang
off: it owns the cost model, the interrupt controller, DMA-able memory
allocation, the monotonic clock, and the two primitive operations every
software model uses:

* ``cpu(segment)`` -- sample the duration of a named software segment
  (nominal + body jitter + any Poisson interference stall) for the
  caller to ``yield``;
* ``mmio_read`` / ``mmio_write`` -- processor-initiated accesses to
  device BARs, with the fundamental asymmetry the paper's analysis
  leans on: writes are *posted* (cheap for the CPU, the paper's VirtIO
  driver needs exactly one per transfer -- "only a notification using a
  single I/O write is needed at runtime"), while reads stall the CPU for
  a full link round trip.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.host.costs import CostModel, default_cost_model
from repro.host.irq import InterruptController
from repro.host.timekeeping import MonotonicClock
from repro.mem.dma import DmaAllocator, DmaBuffer
from repro.mem.physical import PhysicalMemory
from repro.pcie.root_complex import RootComplex
from repro.sim.component import Component
from repro.sim.event import Event
from repro.sim.time import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class HostKernel(Component):
    """The simulated host OS."""

    def __init__(
        self,
        sim: "Simulator",
        rc: RootComplex,
        costs: Optional[CostModel] = None,
        name: str = "host",
        parent: Optional[Component] = None,
        tracer=None,
    ) -> None:
        super().__init__(sim, name, parent=parent, tracer=tracer)
        self.rc = rc
        self.memory: PhysicalMemory = rc.host_memory
        self.dma = DmaAllocator(self.memory)
        self.costs = costs if costs is not None else default_cost_model()  # property: also binds hot-path caches
        self.clock = MonotonicClock(sim)
        self.irqc = InterruptController(sim, self, parent=self)
        rc.set_msi_handler(self.irqc.deliver_msi)
        # ``cpu`` runs once per software segment of every simulated
        # round trip; resolve its two random streams once here instead
        # of re-deriving the component path and hitting the simulator's
        # stream table on every call.  The streams are name-derived, so
        # early creation does not change any draw sequence.
        self._cpu_rng = self.rng("cpu")
        self._interference_rng = self.rng("interference")

    # -- CPU time ---------------------------------------------------------------

    @property
    def costs(self) -> CostModel:
        return self._costs

    @costs.setter
    def costs(self, model: CostModel) -> None:
        # ``cpu`` runs once per software segment of every round trip;
        # bind the segment table and interference model here so the hot
        # path skips two attribute chains and a method call.  Tests that
        # swap the cost model (``kernel.costs = ...``) go through this
        # setter, keeping the caches coherent.
        self._costs = model
        self._segments = model.segments
        self._interference = model.interference

    def cpu(self, segment: str, extra_ps: SimTime = 0) -> SimTime:
        """Sampled duration of one software segment, to be yielded.

        ``extra_ps`` adds a deterministic data-dependent part (e.g. a
        per-byte copy cost) before interference is applied, so long
        copies are proportionally more likely to be preempted.
        """
        model = self._segments.get(segment)
        if model is None:
            raise KeyError(f"no cost segment named {segment!r}")
        duration = model.sample(self._cpu_rng) + extra_ps
        stall = self._interference.stall_during(duration, self._interference_rng)
        if stall:
            self.trace("preemption", segment=segment, stall_ps=stall)
        return duration + stall

    def copy(self, length: int) -> SimTime:
        """Duration of copying *length* bytes (copy_touch + per byte)."""
        return self.cpu("copy_touch", extra_ps=self.costs.copy_cost(length))

    def checksum(self, length: int) -> SimTime:
        """Duration of software-checksumming *length* bytes."""
        return self.cpu("copy_touch", extra_ps=self.costs.csum_cost(length))

    # -- MMIO --------------------------------------------------------------------

    def mmio_write(self, addr: int, data: bytes) -> SimTime:
        """Posted MMIO write: issues the TLP immediately; returns the
        CPU-side cost for the caller to yield."""
        self.rc.mmio_write(addr, data)
        return self.cpu("mmio_write_cpu")

    def mmio_read(self, addr: int, length: int) -> Generator[Any, Any, bytes]:
        """Non-posted MMIO read: the caller is stalled for the link
        round trip plus a small CPU-side overhead.  Usage::

            value = yield from kernel.mmio_read(addr, 4)
        """
        yield self.cpu("mmio_read_extra")
        data = yield self.rc.mmio_read(addr, length)
        return data

    # -- blocking / wakeup ------------------------------------------------------------

    def block_on(self, event: Event) -> Generator[Any, Any, Any]:
        """Block the calling task on *event*; on wake, charge the
        scheduler wakeup/context-switch cost before resuming.  Returns
        the event's value."""
        value = yield event
        yield self.cpu("task_wakeup")
        return value

    # -- memory ------------------------------------------------------------------------

    def alloc_dma(self, size: int, alignment: int = 64) -> DmaBuffer:
        """Allocate a coherent DMA buffer (rings, packet buffers)."""
        return self.dma.alloc(size, alignment)

    def gettime_ns(self) -> int:
        """``clock_gettime(CLOCK_MONOTONIC)`` value (caller should yield
        ``self.clock.call_cost()`` to account for the call)."""
        return self.clock.gettime_ns()
