"""virtio-net front-end driver.

The in-kernel network driver the paper evaluates: it binds the
virtio-pci transport, exposes the FPGA as a NIC to the host stack, and
implements the runtime data path whose costs Fig. 4 attributes to "the
software stack":

**Transmit** (``ndo_start_xmit``): clean completed TX chains, prepend
the virtio_net_hdr (requesting checksum offload when the stack left
CHECKSUM_PARTIAL), expose the buffer on the transmitq, publish, and
issue *one* posted doorbell write.  No descriptor traffic, no register
programming, no completion interrupt (the driver suppresses transmitq
interrupts and cleans opportunistically, as Linux's virtio-net does in
its default non-TX-NAPI mode).

**Receive**: the receiveq holds pre-posted buffers; the device DMAs a
frame and raises the queue's MSI-X vector; the ISR only schedules NAPI;
the poll loop harvests used buffers, reposts fresh ones, and feeds the
stack -- then re-enables interrupts.

**Multi-queue** (VIRTIO_NET_F_MQ): when the device offers N > 1
virtqueue pairs, the driver brings up all of them -- one NAPI context,
one RX buffer pool, one TX slot pool, and one MSI-X vector pair per
queue pair -- enables them with VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET, and
steers each outbound frame to the pair its RSS flow hash selects
(matching the device's receive-side steering, so a flow stays on one
pair in both directions).  With one pair, every structure below
degenerates to the single-queue driver unchanged.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from repro.drivers.virtio_pci import VirtioPciTransport
from repro.host.kernel import HostKernel
from repro.host.netstack.netdev import (
    FEATURE_HW_CSUM,
    FEATURE_RX_CSUM_VALID,
    NapiContext,
    NetDevice,
)
from repro.host.netstack.rss import steer
from repro.host.netstack.skb import CHECKSUM_PARTIAL, CHECKSUM_UNNECESSARY, Skb
from repro.host.netstack.stack import NetworkStack
from repro.mem.dma import DmaBuffer
from repro.sim.time import ns
from repro.virtio.constants import (
    STATUS_DEVICE_NEEDS_RESET,
    VIRTIO_F_VERSION_1,
    VIRTIO_NET_CTRL_MQ,
    VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET,
    VIRTIO_NET_F_CSUM,
    VIRTIO_NET_F_CTRL_VQ,
    VIRTIO_NET_F_GUEST_CSUM,
    VIRTIO_NET_F_MAC,
    VIRTIO_NET_F_MQ,
    VIRTIO_NET_F_MTU,
    VIRTIO_NET_F_STATUS,
)
from repro.virtio.features import FeatureSet
from repro.virtio.net_header import (
    VIRTIO_NET_HDR_F_DATA_VALID,
    VIRTIO_NET_HDR_F_NEEDS_CSUM,
    VIRTIO_NET_HDR_SIZE,
    VirtioNetHeader,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.pcie.enumeration import DiscoveredFunction
    from repro.virtio.transport import Transport

RECEIVEQ = 0
TRANSMITQ = 1
CTRLQ = 2


def rx_queue_index(pair: int) -> int:
    """Queue index of pair *pair*'s receiveq (5.1.2)."""
    return 2 * pair


def tx_queue_index(pair: int) -> int:
    """Queue index of pair *pair*'s transmitq (5.1.2)."""
    return 2 * pair + 1


#: Receive buffers kept posted (virtio-net fills the whole ring; a
#: modest pool keeps simulation memory small with identical latency
#: behaviour at the experiments' one-in-flight load).
RX_POOL_SIZE = 64
#: Size of each receive buffer (MTU frame + virtio_net_hdr).
RX_BUFFER_SIZE = 2048
#: Transmit buffer slots per queue pair (recycled after completion).
TX_POOL_SIZE = 64
TX_BUFFER_SIZE = 2048

#: Features this driver implementation supports.
DRIVER_SUPPORTED = FeatureSet.of(
    VIRTIO_F_VERSION_1,
    VIRTIO_NET_F_CSUM,
    VIRTIO_NET_F_CTRL_VQ,
    VIRTIO_NET_F_GUEST_CSUM,
    VIRTIO_NET_F_MAC,
    VIRTIO_NET_F_MQ,
    VIRTIO_NET_F_MTU,
    VIRTIO_NET_F_STATUS,
)


class VirtioNetDriver:
    """Bound driver instance for one virtio-net function."""

    def __init__(
        self,
        kernel: HostKernel,
        stack: NetworkStack,
        function: "DiscoveredFunction",
        ifname: str = "virtio0",
        transport: Optional["Transport"] = None,
    ) -> None:
        self.kernel = kernel
        self.stack = stack
        if transport is None:
            transport = VirtioPciTransport(kernel, function, name=ifname)
        self.transport = transport
        self.ifname = ifname
        self.netdev: Optional[NetDevice] = None
        #: Enabled TX/RX virtqueue pairs (1 until MQ is negotiated).
        self.queue_pairs = 1
        self.napis: List[NapiContext] = []
        self._rx_pools: List[Dict[int, DmaBuffer]] = []  # pair -> {head: buffer}
        self._tx_pools: List[List[DmaBuffer]] = []
        self._tx_slots: List[int] = []
        self._tx_counts: List[int] = []
        self._pending: List[Dict[int, tuple]] = []  # pair -> {head: (addr, len)}
        self.tx_ring_drops = 0
        self.tx_kicks = 0
        self.rx_irqs = 0
        #: frames steered to each TX pair (RSS evidence).
        self.tx_steered: List[int] = []
        self.has_ctrl_vq = False
        self._ctrl_buf = None
        self._ctrl_status = None
        self._ctrl_pending = None
        self.ctrl_commands = 0
        # Fault tolerance (active only when repro.faults attaches an
        # injector; every hook below is gated on ``injector``).
        self.injector = None
        self.watchdog_timeout_ns = 1_000_000.0
        self.max_watchdog_kicks = 3
        self._watchdog_armed = False
        self._watchdog_snapshot: List[int] = []
        self._watchdog_kicks = 0
        self._stall_started_at: Optional[int] = None
        self._recovering = False
        self.watchdog_stalls = 0
        self.watchdog_rekicks = 0
        self.device_resets = 0
        self.needs_reset_seen = 0
        self.requests_failed = 0
        self.recovery_latencies_ps: List[int] = []

    # -- single-queue compatibility views ------------------------------------------
    #
    # Pre-MQ code (tests, fault injector, health probes) reads these as
    # scalars/dicts; with one pair they are exactly the pair-0 state.

    @property
    def napi(self) -> Optional[NapiContext]:
        return self.napis[0] if self.napis else None

    @property
    def _rx_buffers(self) -> Dict[int, DmaBuffer]:
        merged: Dict[int, DmaBuffer] = {}
        for pool in self._rx_pools:
            merged.update(pool)
        return merged

    @property
    def _pending_tx(self) -> Dict[int, tuple]:
        merged: Dict[int, tuple] = {}
        for pending in self._pending:
            merged.update(pending)
        return merged

    @property
    def _tx_outstanding(self) -> int:
        return sum(self._tx_counts)

    # -- probe --------------------------------------------------------------------

    def probe(self, ip: int) -> Generator[Any, Any, NetDevice]:
        """Full bind: transport init, netdev registration, RX fill."""
        transport = self.transport
        yield from transport.discover()
        yield from transport.initialize(DRIVER_SUPPORTED)
        accepted = transport.accepted_features

        # Device config: MAC and MTU.
        mac = yield from transport.device_config_read(0, 6)
        mtu = 1500
        if accepted.has(VIRTIO_NET_F_MTU):
            raw = yield from transport.device_config_read(10, 2)
            mtu = int.from_bytes(raw, "little")
        self.queue_pairs = 1
        if accepted.has(VIRTIO_NET_F_MQ):
            raw = yield from transport.device_config_read(8, 2)
            self.queue_pairs = max(1, int.from_bytes(raw, "little"))

        features = set()
        if accepted.has(VIRTIO_NET_F_CSUM):
            features.add(FEATURE_HW_CSUM)
        if accepted.has(VIRTIO_NET_F_GUEST_CSUM):
            features.add(FEATURE_RX_CSUM_VALID)
        self.netdev = NetDevice(self.kernel, self.ifname, mac, mtu=mtu, features=features)
        self.netdev.set_xmit(self._start_xmit)
        self.stack.register_device(self.netdev, ip)

        # Per-pair RX interrupt -> NAPI, plus the TX-completion vector.
        self.napis = []
        self.tx_steered = [0] * self.queue_pairs
        for pair in range(self.queue_pairs):
            napi = NapiContext(
                self.kernel,
                self.netdev,
                poll=partial(self._napi_poll, pair),
                irq_enable=partial(self._rx_irq_enable, pair),
                irq_disable=partial(self._rx_irq_disable, pair),
                recheck=partial(self._rx_has_used, pair),
            )
            self.napis.append(napi)
            transport.bind_queue_interrupt(
                rx_queue_index(pair), partial(self._rx_interrupt, pair)
            )
            transport.bind_queue_interrupt(tx_queue_index(pair), self._tx_interrupt)
        transport.bind_config_interrupt(self._config_interrupt)

        # Control queue, when the device exposes one.
        ctrl_index = self.ctrl_queue_index()
        self.has_ctrl_vq = (
            accepted.has(VIRTIO_NET_F_CTRL_VQ) and len(transport.virtqueues) > ctrl_index
        )
        if self.has_ctrl_vq:
            self._ctrl_buf = self.kernel.alloc_dma(64)
            self._ctrl_status = self.kernel.alloc_dma(16)
            transport.bind_queue_interrupt(ctrl_index, self._ctrl_interrupt)

        # TX buffer pools; transmitq interrupts are suppressed --
        # completions are cleaned in the xmit path (default Linux
        # virtio-net behaviour).
        self._tx_pools = []
        self._tx_slots = [0] * self.queue_pairs
        self._tx_counts = [0] * self.queue_pairs
        self._pending = [dict() for _ in range(self.queue_pairs)]
        for pair in range(self.queue_pairs):
            pool = [self.kernel.alloc_dma(TX_BUFFER_SIZE) for _ in range(TX_POOL_SIZE)]
            self._tx_pools.append(pool)
            transport.queue(tx_queue_index(pair)).set_avail_no_interrupt(True)

        # Fill every receiveq and hand the buffers to the device.
        self._rx_pools = [dict() for _ in range(self.queue_pairs)]
        for pair in range(self.queue_pairs):
            rx_vq = transport.queue(rx_queue_index(pair))
            for _ in range(RX_POOL_SIZE):
                buffer = self.kernel.alloc_dma(RX_BUFFER_SIZE)
                head = rx_vq.add_buffer([], [(buffer.addr, RX_BUFFER_SIZE)])
                self._rx_pools[pair][head] = buffer
            rx_vq.publish()
            yield from transport.notify(rx_queue_index(pair))

        if self.queue_pairs > 1:
            # 5.1.6.5.5: the device uses only pair 0 until told otherwise.
            ack = yield from self.send_ctrl_command(
                VIRTIO_NET_CTRL_MQ,
                VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET,
                self.queue_pairs.to_bytes(2, "little"),
            )
            if ack != 0:
                raise RuntimeError(f"{self.ifname}: VQ_PAIRS_SET rejected ({ack})")
        return self.netdev

    def ctrl_queue_index(self) -> int:
        """Queue index of the control queue (after all data pairs)."""
        return 2 * self.queue_pairs

    # -- transmit path -----------------------------------------------------------------

    def tx_has_room(self) -> bool:
        """Whether some transmitq can accept another frame right now.

        Conservative: completions pending in the used ring would free
        slots on the next xmit's opportunistic clean, so a ``False``
        here can be one clean away from ``True``.  Open-loop workload
        generators treat ``False`` as a qdisc-style tail drop.

        Honours any ``depth_limit`` installed on the transmitq (the
        overload layer's avail-ring bound) via :meth:`has_room`.

        Completions parked in the used ring count as room: the next
        xmit's opportunistic clean reclaims them before adding, so a
        full-looking ring with parked completions is one clean away
        from accepting a frame.  Without this, a generator that gates
        on ``tx_has_room`` wedges permanently once the ring fills --
        nothing cleans, so nothing ever frees (the deadlock the E-S1
        soak's recovery phase exposed).
        """
        for pair in range(self.queue_pairs):
            vq = self.transport.queue(tx_queue_index(pair))
            if vq.has_room(1) and self._tx_counts[pair] < TX_POOL_SIZE:
                return True
            if vq.has_used():
                return True
        return False

    def tx_depth_rejects(self) -> int:
        """Frames rejected by TX avail-ring depth bounds, over all pairs
        (the overload layer's bounded-queue drop counter)."""
        return sum(
            self.transport.queue(tx_queue_index(pair)).depth_rejects
            for pair in range(self.queue_pairs)
        )

    def _start_xmit(self, skb: Skb) -> Generator[Any, Any, None]:
        kernel = self.kernel
        if self.queue_pairs > 1:
            # RSS steering: same flow hash as the device's receive side,
            # so a flow's TX and RX live on the same pair.
            pair = steer(bytes(skb.data[:42]), self.queue_pairs)
        else:
            pair = 0
        self.tx_steered[pair] += 1
        vq = self.transport.queue(tx_queue_index(pair))

        # Opportunistically clean completed transmissions.
        while vq.has_used():
            elem = vq.get_used()
            assert elem is not None
            self._tx_counts[pair] -= 1
            self._pending[pair].pop(elem.head, None)
            yield kernel.cpu("virtio_get_buf")

        if not (vq.has_room(1) and self._tx_counts[pair] < TX_POOL_SIZE):
            # The ring (or the overload layer's depth bound) is still
            # full after the clean.  Linux would netif_stop_queue
            # earlier; our qdisc gate normally catches this, so this is
            # the defensive backstop -- drop with a counted reason
            # rather than corrupting ring state with an overflow add.
            self.tx_ring_drops += 1
            if self.netdev is not None:
                self.netdev.count_tx_drop("tx_ring_full")
            return

        header = VirtioNetHeader(num_buffers=0)
        if skb.ip_summed == CHECKSUM_PARTIAL:
            header = VirtioNetHeader(
                flags=VIRTIO_NET_HDR_F_NEEDS_CSUM,
                csum_start=skb.csum_start,
                csum_offset=skb.csum_offset,
                num_buffers=0,
            )
        buffer = self._tx_pools[pair][self._tx_slots[pair]]
        self._tx_slots[pair] = (self._tx_slots[pair] + 1) % TX_POOL_SIZE
        total = VIRTIO_NET_HDR_SIZE + len(skb.data)
        if total > buffer.size:
            raise RuntimeError(f"frame of {total}B exceeds TX buffer")
        # The skb's pages are already DMA-visible; placing the bytes in
        # the pool buffer models the header prepend + page mapping, whose
        # CPU cost is the virtio_add_buf segment.  Header and frame are
        # written separately so no concatenated intermediate is built.
        buffer.write(header.encode())
        buffer.write(skb.data, VIRTIO_NET_HDR_SIZE)
        yield kernel.cpu("virtio_add_buf")
        head = vq.add_buffer([(buffer.addr, total)], [])
        vq.publish()
        self._pending[pair][head] = (buffer.addr, total)
        self._tx_counts[pair] += 1
        # The single runtime doorbell (Section IV-A).
        self.tx_kicks += 1
        yield from self.transport.notify(tx_queue_index(pair))
        if self.injector is not None and not self._watchdog_armed:
            self._watchdog_armed = True
            self._watchdog_snapshot = self._used_idx_snapshot()
            self.kernel.sim.spawn(self._watchdog(), name=f"{self.ifname}.tx-watchdog")

    # -- receive path ---------------------------------------------------------------------

    def _rx_interrupt(self, pair: int = 0) -> Generator[Any, Any, None]:
        """Hard-IRQ half: acknowledge and schedule the pair's NAPI."""
        self.rx_irqs += 1
        yield self.kernel.cpu("driver_irq_ack")
        self.napis[pair].schedule()

    def _tx_interrupt(self) -> Generator[Any, Any, None]:
        """Transmitq interrupts are suppressed; a stray one (raised
        before suppression took effect) just gets acknowledged."""
        yield self.kernel.cpu("driver_irq_ack")

    def _rx_has_used(self, pair: int = 0) -> bool:
        return self.transport.queue(rx_queue_index(pair)).has_used()

    def _rx_irq_disable(self, pair: int = 0) -> None:
        self.transport.queue(rx_queue_index(pair)).set_avail_no_interrupt(True)

    def _rx_irq_enable(self, pair: int = 0) -> None:
        self.transport.queue(rx_queue_index(pair)).set_avail_no_interrupt(False)

    def _napi_poll(self, pair: int, budget: int) -> Generator[Any, Any, int]:
        """Harvest up to *budget* received frames from one pair."""
        kernel = self.kernel
        vq = self.transport.queue(rx_queue_index(pair))
        pool = self._rx_pools[pair]
        harvested = 0
        reposted = False
        while harvested < budget:
            elem = vq.get_used()
            if elem is None:
                break
            yield kernel.cpu("virtio_get_buf")
            buffer = pool.pop(elem.head)
            # The snapshot copy is required: the buffer is reposted
            # below and the device may DMA into it while the stack is
            # still parsing.  Everything downstream (frame, IP, UDP,
            # datagram) is a view of this one private snapshot.
            raw = buffer.read(0, elem.written)
            header = VirtioNetHeader.decode(raw)
            frame = memoryview(raw)[VIRTIO_NET_HDR_SIZE:]
            skb = Skb(data=frame)
            if header.flags & VIRTIO_NET_HDR_F_DATA_VALID:
                skb.ip_summed = CHECKSUM_UNNECESSARY

            # Repost the buffer before processing (try_fill_recv).
            yield kernel.cpu("virtio_add_buf")
            head = vq.add_buffer([], [(buffer.addr, RX_BUFFER_SIZE)])
            pool[head] = buffer
            reposted = True

            assert self.netdev is not None
            yield from self.stack.netif_receive(self.netdev, skb)
            harvested += 1
        if reposted:
            vq.publish()
            yield from self.transport.notify(rx_queue_index(pair))
        return harvested

    # -- fault recovery ---------------------------------------------------------------------

    def _used_idx_snapshot(self) -> List[int]:
        return [
            self.transport.queue(tx_queue_index(pair)).device_used_idx()
            for pair in range(self.queue_pairs)
        ]

    def _watchdog(self) -> Generator[Any, Any, None]:
        """TX watchdog (the model's ``ndo_tx_timeout`` path): while
        transmissions are pending, check that the device keeps making
        used-ring progress on every pair.  A stalled queue is re-kicked
        a bounded number of times (recovers lost doorbells), then
        escalated to a full device reset.  All checks are pure
        ring-memory reads, so an idle watchdog never perturbs the
        simulation's RNG streams."""
        try:
            while True:
                yield self.kernel.sim.timeout(
                    ns(self.watchdog_timeout_ns), name=f"{self.ifname}.watchdog"
                )
                if self._recovering or not any(self._pending):
                    return
                snapshot = self._used_idx_snapshot()
                stalled = [
                    pair
                    for pair in range(self.queue_pairs)
                    if self._pending[pair]
                    and snapshot[pair] == self._watchdog_snapshot[pair]
                ]
                if not stalled:
                    # Progress since the last check: healthy.
                    self._watchdog_snapshot = snapshot
                    self._watchdog_kicks = 0
                    if self._stall_started_at is not None:
                        self.recovery_latencies_ps.append(
                            self.kernel.sim.now - self._stall_started_at
                        )
                        self._stall_started_at = None
                    continue
                if all(
                    self.transport.queue(tx_queue_index(pair)).has_used()
                    for pair in stalled
                ):
                    # Completions are parked in the used ring waiting for
                    # the next xmit's opportunistic clean -- host-side
                    # laziness, not a device stall (and the normal state
                    # once traffic ends).
                    return
                self.watchdog_stalls += 1
                if self._stall_started_at is None:
                    self._stall_started_at = self.kernel.sim.now
                if self._watchdog_kicks < self.max_watchdog_kicks:
                    self._watchdog_kicks += 1
                    self.watchdog_rekicks += 1
                    for pair in stalled:
                        if not self.transport.queue(tx_queue_index(pair)).has_used():
                            yield from self.transport.notify(tx_queue_index(pair))
                    continue
                self._watchdog_kicks = 0
                self._begin_recovery()
                return
        finally:
            self._watchdog_armed = False

    def _config_interrupt(self) -> Generator[Any, Any, None]:
        """Configuration-change ISR: on DEVICE_NEEDS_RESET, schedule the
        reset/re-negotiation work outside the hard-IRQ path."""
        yield self.kernel.cpu("driver_irq_ack")
        yield from self.transport.isr_read()  # read-to-clear
        status = yield from self.transport.read_device_status()
        if status & STATUS_DEVICE_NEEDS_RESET:
            self.needs_reset_seen += 1
            self._begin_recovery()

    def _begin_recovery(self) -> None:
        if self._recovering:
            return
        self._recovering = True
        self.kernel.sim.spawn(self._recover(), name=f"{self.ifname}.reset-recovery")

    def _recover(self) -> Generator[Any, Any, None]:
        """Reset the device and drive the full 3.1.1 re-initialization,
        then restore runtime state: RX refill from the persistent buffer
        pools and replay of every in-flight TX chain (their pool buffers
        still hold the frames), so no packet is lost across the reset."""
        start = self._stall_started_at
        if start is None:
            start = self.kernel.sim.now
        self._stall_started_at = None
        self.device_resets += 1
        transport = self.transport
        # Harvest completions parked in the used rings first: a chain the
        # device already consumed must not be replayed (it would arrive
        # twice), only chains still genuinely in flight.
        pending: List[List[tuple]] = []
        for pair in range(self.queue_pairs):
            old_tx = transport.queue(tx_queue_index(pair))
            while old_tx.has_used():
                elem = old_tx.get_used()
                assert elem is not None
                self._tx_counts[pair] -= 1
                self._pending[pair].pop(elem.head, None)
                yield self.kernel.cpu("virtio_get_buf")
            pending.append(list(self._pending[pair].values()))  # FIFO order
            self._pending[pair].clear()
            self._tx_counts[pair] = 0
        for index in range(len(transport.virtqueues)):
            transport.unbind_queue_interrupt(index)
        rx_pools = [list(pool.values()) for pool in self._rx_pools]
        for pool in self._rx_pools:
            pool.clear()
        transport.reset_runtime_state()
        yield from transport.initialize(DRIVER_SUPPORTED)
        for pair in range(self.queue_pairs):
            transport.bind_queue_interrupt(
                rx_queue_index(pair), partial(self._rx_interrupt, pair)
            )
            transport.bind_queue_interrupt(tx_queue_index(pair), self._tx_interrupt)
        ctrl_index = self.ctrl_queue_index()
        if self.has_ctrl_vq and len(transport.virtqueues) > ctrl_index:
            transport.bind_queue_interrupt(ctrl_index, self._ctrl_interrupt)
        for pair in range(self.queue_pairs):
            transport.queue(tx_queue_index(pair)).set_avail_no_interrupt(True)
        for pair in range(self.queue_pairs):
            rx_vq = transport.queue(rx_queue_index(pair))
            for buffer in rx_pools[pair]:
                head = rx_vq.add_buffer([], [(buffer.addr, RX_BUFFER_SIZE)])
                self._rx_pools[pair][head] = buffer
            rx_vq.publish()
            yield from transport.notify(rx_queue_index(pair))
        if self.queue_pairs > 1:
            # The reset dropped the device back to one active pair.
            yield from self.send_ctrl_command(
                VIRTIO_NET_CTRL_MQ,
                VIRTIO_NET_CTRL_MQ_VQ_PAIRS_SET,
                self.queue_pairs.to_bytes(2, "little"),
            )
        replayed = False
        for pair in range(self.queue_pairs):
            tx_vq = transport.queue(tx_queue_index(pair))
            for addr, length in pending[pair]:
                yield self.kernel.cpu("virtio_add_buf")
                head = tx_vq.add_buffer([(addr, length)], [])
                self._pending[pair][head] = (addr, length)
                self._tx_counts[pair] += 1
            if pending[pair]:
                tx_vq.publish()
                self.tx_kicks += 1
                replayed = True
                yield from self.transport.notify(tx_queue_index(pair))
        self.recovery_latencies_ps.append(self.kernel.sim.now - start)
        self._recovering = False
        if replayed and not self._watchdog_armed:
            # Keep watching the replayed chains (their kick could itself
            # be swallowed by a lost-notification fault).
            self._watchdog_armed = True
            self._watchdog_snapshot = self._used_idx_snapshot()
            self.kernel.sim.spawn(self._watchdog(), name=f"{self.ifname}.tx-watchdog")

    # -- control queue ----------------------------------------------------------------------

    def _ctrl_interrupt(self) -> Generator[Any, Any, None]:
        yield self.kernel.cpu("driver_irq_ack")
        vq = self.transport.queue(self.ctrl_queue_index())
        while True:
            elem = vq.get_used()
            if elem is None:
                break
            yield self.kernel.cpu("virtio_get_buf")
            if self._ctrl_pending is not None and not self._ctrl_pending.triggered:
                self._ctrl_pending.trigger(None)

    def send_ctrl_command(self, cls: int, cmd: int,
                          data: bytes = b"") -> Generator[Any, Any, int]:
        """Issue one control-queue command; returns the device's ack
        byte (0 = VIRTIO_NET_OK).  Commands are serialized (the kernel
        holds the RTNL lock on this path)."""
        if not self.has_ctrl_vq:
            raise RuntimeError("control queue not negotiated")
        from repro.sim.event import Event

        kernel = self.kernel
        assert self._ctrl_buf is not None and self._ctrl_status is not None
        if self._ctrl_pending is not None and not self._ctrl_pending.triggered:
            raise RuntimeError("concurrent control commands not supported")
        payload = bytes([cls, cmd]) + data
        self._ctrl_buf.write(payload)
        yield kernel.cpu("virtio_add_buf")
        vq = self.transport.queue(self.ctrl_queue_index())
        vq.add_buffer([(self._ctrl_buf.addr, len(payload))],
                      [(self._ctrl_status.addr, 1)])
        vq.publish()
        self._ctrl_pending = Event(name=f"{self.ifname}.ctrl")
        yield from self.transport.notify(self.ctrl_queue_index())
        yield from kernel.block_on(self._ctrl_pending)
        self.ctrl_commands += 1
        return self._ctrl_status.read(0, 1)[0]

    def set_promiscuous(self, enabled: bool) -> Generator[Any, Any, int]:
        """VIRTIO_NET_CTRL_RX / PROMISC."""
        ack = yield from self.send_ctrl_command(0, 0, bytes([1 if enabled else 0]))
        return ack

    # -- diagnostics ---------------------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "tx_kicks": self.tx_kicks,
            "rx_irqs": self.rx_irqs,
            "tx_outstanding": self._tx_outstanding,
            "rx_posted": sum(len(pool) for pool in self._rx_pools),
        }
