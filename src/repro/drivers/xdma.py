"""XDMA character-device reference driver.

Models Xilinx's ``dma_ip_drivers`` XDMA driver (the paper's legacy
baseline, reference [12]) at the granularity the measurements see:

* per-transfer work: pin the user buffer, build a scatter-gather
  descriptor in host memory, program the SGDMA descriptor-pointer
  registers and the channel control register via MMIO
  (Section IV-A: the driver "configures the DMA engine and initiates
  the DMA transfer" on every ``read()``/``write()``),
* block the caller until the channel's completion interrupt, whose
  handler must issue an MMIO *read* of the engine status to identify
  and acknowledge the source -- a full non-posted round trip inside the
  interrupt path,
* expose the whole thing as a character device (``/dev/xdma0_h2c_0`` /
  ``_c2h_0`` semantics folded into one device for the echo-style test).

The paper's test sequence (Section IV-C) does ``write()`` then
``read()`` back-to-back with no device-originated "data ready"
interrupt between them -- the setup favourable to XDMA.  The
"real use case" variant with a user interrupt + ``poll()`` before the
read is available via :meth:`enable_c2h_notification` (ablation A1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, Optional

from repro.fpga.xdma import regs
from repro.fpga.xdma.descriptor import XdmaDescriptor
from repro.host.chardev import CharDevice
from repro.host.kernel import HostKernel
from repro.mem.dma import DmaBuffer
from repro.pcie.msi import MSI_ADDRESS_BASE, MSIX_ENTRY_SIZE
from repro.sim.event import AnyOf, Event
from repro.sim.time import ns

if TYPE_CHECKING:  # pragma: no cover
    from repro.pcie.enumeration import DiscoveredFunction

#: MSI-X vectors: channel IRQ indices are H2C channels first, then C2H.
H2C_VECTOR = 0
C2H_VECTOR = 1
USER_VECTOR = 2

#: AXI address the example design's BRAM occupies (data target).
CARD_ADDRESS = 0x0

#: Largest single transfer the driver's bounce/pin window supports.
MAX_TRANSFER = 1 << 20


class XdmaProbeError(RuntimeError):
    """Unexpected identifier registers or missing BARs."""


class XdmaTransferError(RuntimeError):
    """A transfer could not be completed within the retry budget."""


class XdmaBusyError(RuntimeError):
    """Reject-to-caller: the driver's pending-request window is full.

    The chardev analogue of ``-EBUSY`` from a bounded submission queue:
    raised *before* any engine state is touched, so the caller can
    count the rejection and retry or drop under its own policy."""


class XdmaCharDriver(CharDevice):
    """Bound driver for one XDMA function."""

    def __init__(
        self,
        kernel: HostKernel,
        function: "DiscoveredFunction",
        name: str = "xdma0",
    ) -> None:
        super().__init__(name)
        self.kernel = kernel
        self.function = function
        self.reg_base = 0
        self.msix_table_addr = 0
        self.msix_cap_offset = 0
        self._h2c_desc: Optional[DmaBuffer] = None
        self._c2h_desc: Optional[DmaBuffer] = None
        self._h2c_data: Optional[DmaBuffer] = None
        self._c2h_data: Optional[DmaBuffer] = None
        self._h2c_done: Optional[Event] = None
        self._c2h_done: Optional[Event] = None
        # Completion-event names are fixed per channel; building the
        # f-string once avoids per-transfer formatting on the hot path.
        self._done_event_names = {
            "_h2c_done": f"{name}._h2c_done",
            "_c2h_done": f"{name}._c2h_done",
        }
        self._readable = Event(name=f"{name}.readable")
        self._c2h_notify = False
        self.h2c_vector = -1
        self.c2h_vector = -1
        self.user_vector = -1
        # Per-channel transfer locks: the real driver serializes access
        # to each engine (one transfer owns a channel at a time).
        from repro.sim.resource import Mutex

        self._h2c_lock = Mutex(kernel.sim, name=f"{name}.h2c-lock")
        self._c2h_lock = Mutex(kernel.sim, name=f"{name}.c2h-lock")
        self.h2c_transfers = 0
        self.c2h_transfers = 0
        self.interrupts = 0
        # Bounded submission window (overload layer): with ``max_pending``
        # set, requests beyond the window are rejected to the caller with
        # :class:`XdmaBusyError` instead of queueing on the channel locks
        # without bound.  None keeps the historical unbounded behaviour.
        self.max_pending: Optional[int] = None
        self.pending = 0
        self.busy_rejects = 0
        # Fault tolerance.  ``injector`` is attached by repro.faults
        # (None in normal runs); when set, transfers wait with a request
        # timeout and retry with bounded exponential backoff -- the
        # chardev analogue of xdma_xfer_submit()'s timeout handling.
        self.injector = None
        self.request_timeout_ns = 2_000_000.0
        self.max_retries = 5
        self.backoff_ns = 200_000.0
        self.fault_timeouts = 0
        self.fault_retries = 0
        self.lost_irq_recoveries = 0
        self.requests_failed = 0
        self.recovery_latencies_ps: list = []

    # -- probe --------------------------------------------------------------------------

    def probe(self) -> Generator[Any, Any, None]:
        """Verify identifiers, set up MSI-X, enable channel interrupts."""
        kernel = self.kernel
        bars = self.function.bars
        if 1 not in bars or 2 not in bars:
            raise XdmaProbeError("XDMA function missing register or MSI-X BAR")
        self.reg_base = bars[1].address

        # Identifier sanity checks, as the real probe does.
        for offset in (
            regs.H2C_CHANNEL_BASE + regs.CHAN_IDENTIFIER,
            regs.C2H_CHANNEL_BASE + regs.CHAN_IDENTIFIER,
            regs.IRQ_BLOCK_BASE + regs.IRQ_IDENTIFIER,
        ):
            raw = yield from kernel.mmio_read(self.reg_base + offset, 4)
            ident = int.from_bytes(raw, "little")
            if ident & 0xFFF0_0000 != regs.IDENTIFIER_MAGIC:
                raise XdmaProbeError(f"bad identifier {ident:#x} at {offset:#x}")

        # MSI-X: find the capability, program one entry per channel.
        # Entry indices (H2C/C2H/USER) are device-local; the message
        # data carries host-allocated, system-unique vectors.
        from repro.pcie.config_space import CAP_ID_MSIX  # local to avoid cycle

        port = self.function.port
        for cap in self.function.capabilities:
            if cap.cap_id == CAP_ID_MSIX:
                self.msix_cap_offset = cap.offset
                raw = bytearray()
                for chunk in range(0, 12, 4):
                    raw += yield port.cfg_read(cap.offset + chunk, 4)
                table = int.from_bytes(raw[4:8], "little")
                self.msix_table_addr = bars[table & 0x7].address + (table & ~0x7)
        if not self.msix_table_addr:
            raise XdmaProbeError("XDMA function lacks MSI-X")
        self.h2c_vector = kernel.irqc.allocate_vector()
        self.c2h_vector = kernel.irqc.allocate_vector()
        self.user_vector = kernel.irqc.allocate_vector()
        entries = (
            (H2C_VECTOR, self.h2c_vector),
            (C2H_VECTOR, self.c2h_vector),
            (USER_VECTOR, self.user_vector),
        )
        for entry, vector in entries:
            base = self.msix_table_addr + entry * MSIX_ENTRY_SIZE
            yield kernel.mmio_write(base, MSI_ADDRESS_BASE.to_bytes(8, "little"))
            yield kernel.mmio_write(base + 8, vector.to_bytes(4, "little"))
            yield kernel.mmio_write(base + 12, (0).to_bytes(4, "little"))
        ctrl_raw = yield port.cfg_read(self.msix_cap_offset + 2, 2)
        ctrl = int.from_bytes(ctrl_raw, "little") | 0x8000
        yield port.cfg_write(self.msix_cap_offset + 2, ctrl.to_bytes(2, "little"))

        # Enable channel interrupts in the IRQ block (both channels),
        # and the first user interrupt line (for the A1 ablation).
        yield kernel.mmio_write(
            self.reg_base + regs.IRQ_BLOCK_BASE + regs.IRQ_CHANNEL_INT_ENABLE,
            (0x3).to_bytes(4, "little"),
        )
        yield kernel.mmio_write(
            self.reg_base + regs.IRQ_BLOCK_BASE + regs.IRQ_USER_INT_ENABLE,
            (0x1).to_bytes(4, "little"),
        )
        # Vector mapping: user irq line 0 -> USER_VECTOR.
        yield kernel.mmio_write(
            self.reg_base + regs.IRQ_BLOCK_BASE + regs.IRQ_USER_VECTOR_BASE,
            USER_VECTOR.to_bytes(4, "little"),
        )

        kernel.irqc.register(self.h2c_vector, self._h2c_interrupt)
        kernel.irqc.register(self.c2h_vector, self._c2h_interrupt)
        kernel.irqc.register(self.user_vector, self._user_interrupt)

        # DMA-coherent descriptor buffers and bounce windows.
        self._h2c_desc = kernel.alloc_dma(32)
        self._c2h_desc = kernel.alloc_dma(32)
        self._h2c_data = kernel.alloc_dma(MAX_TRANSFER, alignment=4096)
        self._c2h_data = kernel.alloc_dma(MAX_TRANSFER, alignment=4096)

    def enable_c2h_notification(self, enabled: bool = True) -> None:
        """A1 ablation: the FPGA raises a user interrupt when response
        data is ready; applications ``poll()`` before ``read()``."""
        self._c2h_notify = enabled

    # -- interrupt handlers ---------------------------------------------------------------------

    def _channel_isr(self, channel_base: int, done_attr: str) -> Generator[Any, Any, None]:
        """Shared ISR body: read engine status (non-posted MMIO round
        trip), then complete the waiting transfer."""
        self.interrupts += 1
        yield self.kernel.cpu("driver_irq_ack")
        # Identify/acknowledge the source and collect progress: status
        # and completed-descriptor count -- two non-posted round trips
        # inside the hard-IRQ path, as engine_service() performs.
        status_addr = self.reg_base + channel_base + regs.CHAN_STATUS
        yield from self.kernel.mmio_read(status_addr, 4)
        count_addr = self.reg_base + channel_base + regs.CHAN_COMPLETED_DESC_COUNT
        yield from self.kernel.mmio_read(count_addr, 4)
        done: Optional[Event] = getattr(self, done_attr)
        if done is not None and not done.triggered:
            setattr(self, done_attr, None)
            done.trigger(None)

    def _h2c_interrupt(self) -> Generator[Any, Any, None]:
        yield from self._channel_isr(regs.H2C_CHANNEL_BASE, "_h2c_done")

    def _c2h_interrupt(self) -> Generator[Any, Any, None]:
        yield from self._channel_isr(regs.C2H_CHANNEL_BASE, "_c2h_done")

    def _user_interrupt(self) -> Generator[Any, Any, None]:
        """Data-ready notification from user logic (A1 ablation)."""
        self.interrupts += 1
        yield self.kernel.cpu("driver_irq_ack")
        if not self._readable.triggered:
            self._readable.trigger(None)

    # -- transfer launch ---------------------------------------------------------------------------

    def _launch(
        self,
        channel_base: int,
        sgdma_base: int,
        descriptor_buf: DmaBuffer,
        descriptor: XdmaDescriptor,
        done_attr: str,
    ) -> Generator[Any, Any, None]:
        """Program and start one engine, then sleep until its IRQ."""
        kernel = self.kernel
        # Build the descriptor (bounce-buffer setup + descriptor fill).
        yield kernel.cpu("driver_descriptor_build")
        descriptor_buf.write(descriptor.encode())
        if self.injector is not None:
            yield from self._launch_with_recovery(
                channel_base, sgdma_base, descriptor_buf, done_attr
            )
            return
        done = Event(name=self._done_event_names[done_attr])
        setattr(self, done_attr, done)
        # Program the SGDMA pointer and start the engine: three posted
        # MMIO writes per transfer (versus VirtIO's single doorbell).
        base = self.reg_base + sgdma_base
        yield kernel.mmio_write(
            base + regs.SGDMA_DESC_LO, (descriptor_buf.addr & 0xFFFF_FFFF).to_bytes(4, "little")
        )
        yield kernel.mmio_write(
            base + regs.SGDMA_DESC_HI, (descriptor_buf.addr >> 32).to_bytes(4, "little")
        )
        control = regs.CTRL_RUN | regs.CTRL_IE_DESC_STOPPED | regs.CTRL_IE_DESC_COMPLETED
        yield kernel.mmio_write(
            self.reg_base + channel_base + regs.CHAN_CONTROL, control.to_bytes(4, "little")
        )
        # Sleep until the completion interrupt wakes us.
        yield from kernel.block_on(done)
        # Clear the run bit so the next transfer sees an idle engine.
        yield kernel.mmio_write(
            self.reg_base + channel_base + regs.CHAN_CONTROL, (0).to_bytes(4, "little")
        )

    def _launch_with_recovery(
        self,
        channel_base: int,
        sgdma_base: int,
        descriptor_buf: DmaBuffer,
        done_attr: str,
    ) -> Generator[Any, Any, None]:
        """Fault-tolerant launch: bounded request timeout per attempt,
        lost-IRQ detection by polling the status register, engine reset
        plus exponential backoff between retries.

        The fault-free path performs exactly the same CPU-cost draws as
        the plain launch (``AnyOf`` + task wakeup mirrors ``block_on``),
        so a zero-rate fault plan leaves latency results bit-identical.
        """
        kernel = self.kernel
        sg_base = self.reg_base + sgdma_base
        control_addr = self.reg_base + channel_base + regs.CHAN_CONTROL
        status_addr = self.reg_base + channel_base + regs.CHAN_STATUS
        control = regs.CTRL_RUN | regs.CTRL_IE_DESC_STOPPED | regs.CTRL_IE_DESC_COMPLETED
        first_timeout_at = None
        for attempt in range(self.max_retries + 1):
            done = Event(name=self._done_event_names[done_attr])
            setattr(self, done_attr, done)
            yield kernel.mmio_write(
                sg_base + regs.SGDMA_DESC_LO,
                (descriptor_buf.addr & 0xFFFF_FFFF).to_bytes(4, "little"),
            )
            yield kernel.mmio_write(
                sg_base + regs.SGDMA_DESC_HI, (descriptor_buf.addr >> 32).to_bytes(4, "little")
            )
            yield kernel.mmio_write(control_addr, control.to_bytes(4, "little"))
            timeout = kernel.sim.timeout(
                ns(self.request_timeout_ns) << attempt, name=f"{self.name}.req-timeout"
            )
            index, _ = yield AnyOf([done, timeout])
            yield kernel.cpu("task_wakeup")
            if index == 0:
                if first_timeout_at is not None:
                    self.recovery_latencies_ps.append(kernel.sim.now - first_timeout_at)
                yield kernel.mmio_write(control_addr, (0).to_bytes(4, "little"))
                return
            # Request timed out: diagnose via the channel status register.
            self.fault_timeouts += 1
            if first_timeout_at is None:
                first_timeout_at = kernel.sim.now
            raw = yield from kernel.mmio_read(status_addr, 4)
            status = int.from_bytes(raw, "little")
            if status & regs.STAT_DESC_COMPLETED:
                # The transfer finished but its interrupt never arrived:
                # recover without retransferring anything.
                self.lost_irq_recoveries += 1
                self.recovery_latencies_ps.append(kernel.sim.now - first_timeout_at)
                yield kernel.mmio_write(control_addr, (0).to_bytes(4, "little"))
                return
            # Engine halted on a descriptor error or is stalled: stop
            # it, back off, and reprogram from scratch.
            yield kernel.mmio_write(control_addr, (0).to_bytes(4, "little"))
            if attempt == self.max_retries:
                break
            self.fault_retries += 1
            yield kernel.sim.timeout(
                ns(self.backoff_ns) << attempt, name=f"{self.name}.backoff"
            )
        self.requests_failed += 1
        raise XdmaTransferError(
            f"{self.name}: transfer did not complete after {self.max_retries + 1} attempts"
        )

    # -- file operations ---------------------------------------------------------------------------------

    def _admit_request(self) -> None:
        """Bounded-window gate for both channels (no-op when unset)."""
        if self.max_pending is not None and self.pending >= self.max_pending:
            self.busy_rejects += 1
            raise XdmaBusyError(
                f"{self.name}: {self.pending} requests pending "
                f"(window {self.max_pending})"
            )
        self.pending += 1

    def dev_write(self, data: bytes) -> Generator[Any, Any, int]:
        """H2C: move *data* to FPGA memory at CARD_ADDRESS."""
        if not data or len(data) > MAX_TRANSFER:
            raise ValueError(f"write of {len(data)}B outside (0, {MAX_TRANSFER}]")
        assert self._h2c_data is not None and self._h2c_desc is not None
        self._admit_request()
        yield self._h2c_lock.acquire()
        try:
            # The user's pinned pages, reachable by the device.
            self._h2c_data.write(data)
            descriptor = XdmaDescriptor(
                src_addr=self._h2c_data.addr,
                dst_addr=CARD_ADDRESS,
                length=len(data),
                stop=True,
                eop=True,
            )
            yield from self._launch(
                regs.H2C_CHANNEL_BASE, regs.H2C_SGDMA_BASE, self._h2c_desc, descriptor,
                "_h2c_done",
            )
            self.h2c_transfers += 1
        finally:
            self.pending -= 1
            self._h2c_lock.release()
        return len(data)

    def dev_read(self, length: int) -> Generator[Any, Any, bytes]:
        """C2H: move *length* bytes from FPGA memory at CARD_ADDRESS."""
        if length <= 0 or length > MAX_TRANSFER:
            raise ValueError(f"read of {length}B outside (0, {MAX_TRANSFER}]")
        assert self._c2h_data is not None and self._c2h_desc is not None
        self._admit_request()
        yield self._c2h_lock.acquire()
        try:
            descriptor = XdmaDescriptor(
                src_addr=CARD_ADDRESS,
                dst_addr=self._c2h_data.addr,
                length=length,
                stop=True,
                eop=True,
            )
            yield from self._launch(
                regs.C2H_CHANNEL_BASE, regs.C2H_SGDMA_BASE, self._c2h_desc, descriptor,
                "_c2h_done",
            )
            self.c2h_transfers += 1
            if self._c2h_notify:
                self._readable = Event(name=f"{self.name}.readable")
            data = self._c2h_data.read(0, length)
        finally:
            self.pending -= 1
            self._c2h_lock.release()
        return data

    def poll_readable(self) -> Event:
        return self._readable

    # -- diagnostics ----------------------------------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        return {
            "h2c_transfers": self.h2c_transfers,
            "c2h_transfers": self.c2h_transfers,
            "interrupts": self.interrupts,
        }
