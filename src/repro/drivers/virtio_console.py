"""virtio-console front-end driver.

Exposes the console device [14] implemented on the FPGA as a simple
read/write port: writes go out on the transmitq, receive buffers are
kept posted on the receiveq and completed data is queued for readers.
Demonstrates the paper's point that switching device semantics requires
only a different *standard* front-end, not a new custom driver.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, Generator, Optional

from repro.drivers.virtio_pci import VirtioPciTransport
from repro.host.kernel import HostKernel
from repro.mem.dma import DmaBuffer
from repro.sim.event import Event
from repro.virtio.constants import VIRTIO_CONSOLE_F_SIZE, VIRTIO_F_VERSION_1
from repro.virtio.features import FeatureSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.pcie.enumeration import DiscoveredFunction

RECEIVEQ = 0
TRANSMITQ = 1

RX_POOL_SIZE = 16
RX_BUFFER_SIZE = 1024
TX_POOL_SIZE = 16
TX_BUFFER_SIZE = 1024

DRIVER_SUPPORTED = FeatureSet.of(VIRTIO_F_VERSION_1, VIRTIO_CONSOLE_F_SIZE)


class VirtioConsoleDriver:
    """Bound driver for one virtio-console function."""

    def __init__(self, kernel: HostKernel, function: "DiscoveredFunction",
                 name: str = "hvc0") -> None:
        self.kernel = kernel
        self.transport = VirtioPciTransport(kernel, function, name=name)
        self.name = name
        self.cols = 0
        self.rows = 0
        self._rx_buffers: Dict[int, DmaBuffer] = {}
        self._tx_buffers: list[DmaBuffer] = []
        self._tx_slot = 0
        self._rx_data: Deque[bytes] = deque()
        self._rx_waiter: Optional[Event] = None

    def probe(self) -> Generator[Any, Any, None]:
        transport = self.transport
        yield from transport.discover()
        yield from transport.initialize(DRIVER_SUPPORTED)
        if transport.accepted_features.has(VIRTIO_CONSOLE_F_SIZE):
            raw = yield from transport.device_config_read(0, 4)
            self.cols = int.from_bytes(raw[0:2], "little")
            self.rows = int.from_bytes(raw[2:4], "little")
        self.kernel.irqc.register(transport.queue_vector(RECEIVEQ), self._rx_interrupt)
        self.kernel.irqc.register(transport.queue_vector(TRANSMITQ), self._tx_interrupt)
        for _ in range(TX_POOL_SIZE):
            self._tx_buffers.append(self.kernel.alloc_dma(TX_BUFFER_SIZE))
        rx_vq = transport.queue(RECEIVEQ)
        for _ in range(RX_POOL_SIZE):
            buffer = self.kernel.alloc_dma(RX_BUFFER_SIZE)
            head = rx_vq.add_buffer([], [(buffer.addr, RX_BUFFER_SIZE)])
            self._rx_buffers[head] = buffer
        rx_vq.publish()
        yield from transport.notify(RECEIVEQ)
        transport.queue(TRANSMITQ).set_avail_no_interrupt(True)

    # -- interrupts -------------------------------------------------------------------

    def _rx_interrupt(self) -> Generator[Any, Any, None]:
        kernel = self.kernel
        yield kernel.cpu("driver_irq_ack")
        vq = self.transport.queue(RECEIVEQ)
        reposted = False
        while True:
            elem = vq.get_used()
            if elem is None:
                break
            yield kernel.cpu("virtio_get_buf")
            buffer = self._rx_buffers.pop(elem.head)
            self._rx_data.append(buffer.read(0, elem.written))
            head = vq.add_buffer([], [(buffer.addr, RX_BUFFER_SIZE)])
            self._rx_buffers[head] = buffer
            reposted = True
        if reposted:
            vq.publish()
            yield from self.transport.notify(RECEIVEQ)
        if self._rx_data and self._rx_waiter is not None:
            waiter, self._rx_waiter = self._rx_waiter, None
            waiter.trigger(None)

    def _tx_interrupt(self) -> Generator[Any, Any, None]:
        yield self.kernel.cpu("driver_irq_ack")

    # -- application API ----------------------------------------------------------------

    def write(self, data: bytes) -> Generator[Any, Any, int]:
        """Send bytes to the device (one transmitq chain + doorbell)."""
        if not data or len(data) > TX_BUFFER_SIZE:
            raise ValueError(f"write of {len(data)}B outside (0, {TX_BUFFER_SIZE}]")
        kernel = self.kernel
        yield kernel.cpu("syscall_entry")
        vq = self.transport.queue(TRANSMITQ)
        while vq.has_used():
            vq.get_used()
            yield kernel.cpu("virtio_get_buf")
        buffer = self._tx_buffers[self._tx_slot]
        self._tx_slot = (self._tx_slot + 1) % TX_POOL_SIZE
        buffer.write(data)
        yield kernel.cpu("virtio_add_buf")
        vq.add_buffer([(buffer.addr, len(data))], [])
        vq.publish()
        yield from self.transport.notify(TRANSMITQ)
        yield kernel.cpu("syscall_exit")
        return len(data)

    def read(self) -> Generator[Any, Any, bytes]:
        """Blocking read of the next received chunk."""
        kernel = self.kernel
        yield kernel.cpu("syscall_entry")
        while not self._rx_data:
            if self._rx_waiter is not None:
                raise RuntimeError("concurrent console reads not supported")
            self._rx_waiter = Event(name=f"{self.name}.read")
            yield from kernel.block_on(self._rx_waiter)
        data = self._rx_data.popleft()
        yield kernel.copy(len(data))
        yield kernel.cpu("syscall_exit")
        return data
