"""virtio-blk front-end driver.

Block requests ride a single requestq as three-part chains: readable
header (type/sector), data segments, and a writable status byte.  The
driver exposes synchronous ``read_sectors``/``write_sectors`` built on
an interrupt-completed submission path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator

from repro.drivers.virtio_pci import VirtioPciTransport
from repro.host.kernel import HostKernel
from repro.mem.dma import DmaBuffer
from repro.sim.event import Event
from repro.virtio.constants import (
    VIRTIO_F_RING_INDIRECT_DESC,
    VIRTIO_BLK_F_BLK_SIZE,
    VIRTIO_BLK_F_FLUSH,
    VIRTIO_BLK_F_SEG_MAX,
    VIRTIO_BLK_S_OK,
    VIRTIO_BLK_SECTOR_SIZE,
    VIRTIO_BLK_T_FLUSH,
    VIRTIO_BLK_T_IN,
    VIRTIO_BLK_T_OUT,
    VIRTIO_F_VERSION_1,
)
from repro.virtio.features import FeatureSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.pcie.enumeration import DiscoveredFunction

REQUESTQ = 0

DRIVER_SUPPORTED = FeatureSet.of(
    VIRTIO_F_VERSION_1,
    VIRTIO_F_RING_INDIRECT_DESC,
    VIRTIO_BLK_F_SEG_MAX,
    VIRTIO_BLK_F_BLK_SIZE,
    VIRTIO_BLK_F_FLUSH,
)


class BlockIOError(RuntimeError):
    """Device returned a non-OK status."""


class VirtioBlkDriver:
    """Bound driver for one virtio-blk function."""

    def __init__(self, kernel: HostKernel, function: "DiscoveredFunction",
                 name: str = "vda") -> None:
        self.kernel = kernel
        self.transport = VirtioPciTransport(kernel, function, name=name)
        self.name = name
        self.capacity_sectors = 0
        self.blk_size = 512
        self._pending: Dict[int, Event] = {}  # chain head -> completion
        self._header_buf: DmaBuffer | None = None
        self._data_buf: DmaBuffer | None = None
        self._status_buf: DmaBuffer | None = None
        self._indirect_table: DmaBuffer | None = None
        self.use_indirect = False
        self.requests_completed = 0

    def probe(self) -> Generator[Any, Any, None]:
        transport = self.transport
        yield from transport.discover()
        yield from transport.initialize(DRIVER_SUPPORTED)
        raw = yield from transport.device_config_read(0, 8)
        self.capacity_sectors = int.from_bytes(raw, "little")
        if transport.accepted_features.has(VIRTIO_BLK_F_BLK_SIZE):
            raw = yield from transport.device_config_read(20, 4)
            self.blk_size = int.from_bytes(raw, "little")
        self.kernel.irqc.register(transport.queue_vector(REQUESTQ), self._interrupt)
        self._header_buf = self.kernel.alloc_dma(16)
        self._data_buf = self.kernel.alloc_dma(1 << 20, alignment=4096)
        self._status_buf = self.kernel.alloc_dma(16)
        self.use_indirect = transport.accepted_features.has(VIRTIO_F_RING_INDIRECT_DESC)
        if self.use_indirect:
            # One table reused per (serialized) request: 8 descriptors.
            self._indirect_table = self.kernel.alloc_dma(8 * 16)

    def _interrupt(self) -> Generator[Any, Any, None]:
        kernel = self.kernel
        yield kernel.cpu("driver_irq_ack")
        vq = self.transport.queue(REQUESTQ)
        while True:
            elem = vq.get_used()
            if elem is None:
                break
            yield kernel.cpu("virtio_get_buf")
            done = self._pending.pop(elem.head, None)
            if done is not None:
                done.trigger(elem.written)

    def _submit(
        self, req_type: int, sector: int, data: bytes, read_length: int
    ) -> Generator[Any, Any, bytes]:
        """Build, expose, kick, and await one request chain."""
        kernel = self.kernel
        assert self._header_buf and self._data_buf and self._status_buf
        header = (
            req_type.to_bytes(4, "little") + bytes(4) + sector.to_bytes(8, "little")
        )
        self._header_buf.write(header)
        out_segments = [(self._header_buf.addr, 16)]
        in_segments = []
        if req_type == VIRTIO_BLK_T_OUT and data:
            self._data_buf.write(data)
            out_segments.append((self._data_buf.addr, len(data)))
        elif req_type == VIRTIO_BLK_T_IN and read_length:
            in_segments.append((self._data_buf.addr, read_length))
        in_segments.append((self._status_buf.addr, 1))

        yield kernel.cpu("virtio_add_buf")
        vq = self.transport.queue(REQUESTQ)
        if self.use_indirect:
            assert self._indirect_table is not None
            head = vq.add_buffer_indirect(out_segments, in_segments, self._indirect_table)
        else:
            head = vq.add_buffer(out_segments, in_segments)
        done = Event(name=f"{self.name}.request")
        self._pending[head] = done
        vq.publish()
        yield from self.transport.notify(REQUESTQ)
        yield from kernel.block_on(done)
        self.requests_completed += 1
        status = self._status_buf.read(0, 1)[0]
        if status != VIRTIO_BLK_S_OK:
            raise BlockIOError(f"request type {req_type} failed with status {status}")
        if req_type == VIRTIO_BLK_T_IN:
            yield kernel.copy(read_length)
            return self._data_buf.read(0, read_length)
        return b""

    # -- public API ------------------------------------------------------------------

    def read_sectors(self, sector: int, count: int) -> Generator[Any, Any, bytes]:
        """Read *count* sectors starting at *sector*."""
        length = count * VIRTIO_BLK_SECTOR_SIZE
        data = yield from self._submit(VIRTIO_BLK_T_IN, sector, b"", length)
        return data

    def write_sectors(self, sector: int, data: bytes) -> Generator[Any, Any, None]:
        """Write whole sectors starting at *sector*."""
        if len(data) % VIRTIO_BLK_SECTOR_SIZE:
            raise ValueError(f"data must be whole sectors, got {len(data)}B")
        yield from self._submit(VIRTIO_BLK_T_OUT, sector, data, 0)

    def flush(self) -> Generator[Any, Any, None]:
        """Issue a flush barrier."""
        yield from self._submit(VIRTIO_BLK_T_FLUSH, 0, b"", 0)
