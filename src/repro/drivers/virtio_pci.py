"""virtio-pci transport driver (front-end side).

The "native VirtIO driver" layer the paper relies on: it has no
device-specific knowledge -- it discovers the VirtIO structures through
the capability list, runs the status/feature handshake of VirtIO 1.2
section 3.1.1, allocates split virtqueues in host memory, and hands the
device their addresses *once, at initialization* (the design-philosophy
contrast of Section IV-A: "The driver shares the addresses of all the
data structures necessary for virtqueue operation during device
initialization. Therefore, to start a host-to-card (H2C) data transfer,
only a notification using a single I/O write is needed at runtime.").

All device accesses go through MMIO/config transactions on the
simulated link, so initialization exercises the same machinery the
measurements do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.host.kernel import HostKernel
from repro.pcie.config_space import CAP_ID_MSIX, CAP_ID_VENDOR_SPECIFIC
from repro.pcie.enumeration import DiscoveredFunction
from repro.pcie.msi import MSI_ADDRESS_BASE, MSIX_ENTRY_SIZE
from repro.virtio.constants import (
    STATUS_ACKNOWLEDGE,
    STATUS_DRIVER,
    STATUS_DRIVER_OK,
    STATUS_FEATURES_OK,
    VIRTIO_PCI_CAP_COMMON_CFG,
    VIRTIO_PCI_CAP_DEVICE_CFG,
    VIRTIO_PCI_CAP_ISR_CFG,
    VIRTIO_PCI_CAP_NOTIFY_CFG,
    VIRTIO_PCI_VENDOR_ID,
)
from repro.virtio.features import FeatureSet, negotiate
from repro.virtio.pci_transport import COMMON_CFG
from repro.virtio.virtqueue import DriverVirtqueue, ring_layout


class VirtioProbeError(RuntimeError):
    """Device rejected initialization or lacks required structures."""


@dataclass
class _StructureWindow:
    """Absolute host address of one VirtIO structure."""

    address: int
    length: int
    notify_off_multiplier: int = 0


@dataclass
class VirtioPciTransport:
    """Bound transport state for one VirtIO PCI function."""

    kernel: HostKernel
    function: DiscoveredFunction
    name: str = "virtio-pci"
    windows: Dict[int, _StructureWindow] = field(default_factory=dict)
    msix_table_addr: int = 0
    msix_cap_offset: int = 0
    device_features: FeatureSet = field(default_factory=FeatureSet)
    accepted_features: FeatureSet = field(default_factory=FeatureSet)
    virtqueues: List[DriverVirtqueue] = field(default_factory=list)
    notify_addrs: List[int] = field(default_factory=list)
    queue_vectors_assigned: List[int] = field(default_factory=list)
    msix_vectors_used: int = 0
    config_vector: int = -1

    # -- small MMIO helpers over the common structure -----------------------------

    def _common_addr(self, field_name: str) -> int:
        return self.windows[VIRTIO_PCI_CAP_COMMON_CFG].address + COMMON_CFG.offset_of(field_name)

    def common_write(self, field_name: str, value: int) -> Generator[Any, Any, None]:
        size = COMMON_CFG.size_of(field_name)
        yield self.kernel.mmio_write(self._common_addr(field_name),
                                     value.to_bytes(size, "little"))

    def common_read(self, field_name: str) -> Generator[Any, Any, int]:
        size = COMMON_CFG.size_of(field_name)
        data = yield from self.kernel.mmio_read(self._common_addr(field_name), size)
        return int.from_bytes(data, "little")

    def device_config_read(self, offset: int, length: int) -> Generator[Any, Any, bytes]:
        window = self.windows[VIRTIO_PCI_CAP_DEVICE_CFG]
        if offset + length > window.length:
            raise VirtioProbeError(f"device config read beyond window ({offset}+{length})")
        data = yield from self.kernel.mmio_read(window.address + offset, length)
        return data

    def isr_read(self) -> Generator[Any, Any, int]:
        data = yield from self.kernel.mmio_read(self.windows[VIRTIO_PCI_CAP_ISR_CFG].address, 1)
        return data[0]

    def read_device_status(self) -> Generator[Any, Any, int]:
        status = yield from self.common_read("device_status")
        return status

    # -- capability discovery ---------------------------------------------------------

    def discover(self) -> Generator[Any, Any, None]:
        """Walk the capability list, locating the VirtIO structures and
        the MSI-X capability (all via config reads on the wire)."""
        if self.function.vendor_id != VIRTIO_PCI_VENDOR_ID:
            raise VirtioProbeError(
                f"not a VirtIO device: vendor {self.function.vendor_id:#06x}"
            )
        port = self.function.port
        for cap in self.function.capabilities:
            if cap.cap_id == CAP_ID_VENDOR_SPECIFIC:
                raw = bytearray()
                for chunk in range(0, 20, 4):
                    raw += yield port.cfg_read(cap.offset + chunk, 4)
                cfg_type = raw[3]
                bar = raw[4]
                offset = int.from_bytes(raw[8:12], "little")
                length = int.from_bytes(raw[12:16], "little")
                if cfg_type in self.windows:
                    continue  # first instance wins, per spec
                discovered_bar = self.function.bars.get(bar)
                if discovered_bar is None:
                    raise VirtioProbeError(f"virtio cap references unassigned BAR {bar}")
                window = _StructureWindow(
                    address=discovered_bar.address + offset, length=length
                )
                if cfg_type == VIRTIO_PCI_CAP_NOTIFY_CFG:
                    window.notify_off_multiplier = int.from_bytes(raw[16:20], "little")
                self.windows[cfg_type] = window
            elif cap.cap_id == CAP_ID_MSIX:
                raw = bytearray()
                for chunk in range(0, 12, 4):
                    raw += yield port.cfg_read(cap.offset + chunk, 4)
                table = int.from_bytes(raw[4:8], "little")
                table_bar = table & 0x7
                table_offset = table & ~0x7
                discovered_bar = self.function.bars.get(table_bar)
                if discovered_bar is None:
                    raise VirtioProbeError(f"MSI-X table in unassigned BAR {table_bar}")
                self.msix_table_addr = discovered_bar.address + table_offset
                self.msix_cap_offset = cap.offset
        required = (
            VIRTIO_PCI_CAP_COMMON_CFG,
            VIRTIO_PCI_CAP_NOTIFY_CFG,
            VIRTIO_PCI_CAP_ISR_CFG,
            VIRTIO_PCI_CAP_DEVICE_CFG,
        )
        for cfg_type in required:
            if cfg_type not in self.windows:
                raise VirtioProbeError(f"missing VirtIO structure type {cfg_type}")
        if not self.msix_table_addr:
            raise VirtioProbeError("device lacks MSI-X")

    # -- MSI-X programming --------------------------------------------------------------

    def setup_msix_entry(self, entry: int, vector: int) -> Generator[Any, Any, None]:
        """Program and unmask MSI-X table *entry*, with the host-
        allocated *vector* as the message data (the controller's
        dispatch key), as ``pci_alloc_irq_vectors`` + table setup do."""
        base = self.msix_table_addr + entry * MSIX_ENTRY_SIZE
        yield self.kernel.mmio_write(base, MSI_ADDRESS_BASE.to_bytes(8, "little"))
        yield self.kernel.mmio_write(base + 8, vector.to_bytes(4, "little"))
        yield self.kernel.mmio_write(base + 12, (0).to_bytes(4, "little"))
        self.msix_vectors_used = max(self.msix_vectors_used, entry + 1)

    def enable_msix(self) -> Generator[Any, Any, None]:
        """Set the MSI-X enable bit in message control."""
        port = self.function.port
        ctrl_raw = yield port.cfg_read(self.msix_cap_offset + 2, 2)
        ctrl = int.from_bytes(ctrl_raw, "little") | 0x8000
        yield port.cfg_write(self.msix_cap_offset + 2, ctrl.to_bytes(2, "little"))

    # -- initialization handshake ------------------------------------------------------------

    def initialize(
        self,
        driver_supported: FeatureSet,
        queue_sizes: Optional[Dict[int, int]] = None,
        queue_vectors: Optional[Dict[int, int]] = None,
    ) -> Generator[Any, Any, None]:
        """The 3.1.1 sequence: reset, ACKNOWLEDGE, DRIVER, feature
        negotiation, FEATURES_OK, queue setup, DRIVER_OK."""
        # Reset and wait for the device to report 0.
        yield from self.common_write("device_status", 0)
        status = yield from self.common_read("device_status")
        if status != 0:
            raise VirtioProbeError(f"device did not reset (status={status:#x})")
        yield from self.common_write("device_status", STATUS_ACKNOWLEDGE)
        yield from self.common_write("device_status", STATUS_ACKNOWLEDGE | STATUS_DRIVER)

        # Feature negotiation (two 32-bit windows).
        words = []
        for select in (0, 1):
            yield from self.common_write("device_feature_select", select)
            word = yield from self.common_read("device_feature")
            words.append((select, word))
        self.device_features = FeatureSet.from_words(words)
        self.accepted_features = negotiate(self.device_features, driver_supported)
        for select in (0, 1):
            yield from self.common_write("driver_feature_select", select)
            yield from self.common_write("driver_feature", self.accepted_features.word(select))
        status = STATUS_ACKNOWLEDGE | STATUS_DRIVER | STATUS_FEATURES_OK
        yield from self.common_write("device_status", status)
        readback = yield from self.common_read("device_status")
        if not readback & STATUS_FEATURES_OK:
            raise VirtioProbeError("device rejected the negotiated features")

        # MSI-X entries: entry 0 for config changes, one entry per queue
        # after it.  Entry indices are device-local; the message data is
        # a host-allocated, system-unique vector.
        num_queues = (yield from self.common_read("num_queues"))
        if self.config_vector < 0:
            self.config_vector = self.kernel.irqc.allocate_vector()
        yield from self.setup_msix_entry(0, self.config_vector)
        yield from self.common_write("msix_config", 0)

        # Queue setup.
        notify_window = self.windows[VIRTIO_PCI_CAP_NOTIFY_CFG]
        for index in range(num_queues):
            yield from self.common_write("queue_select", index)
            max_size = yield from self.common_read("queue_size")
            if max_size == 0:
                continue
            size = max_size
            if queue_sizes and index in queue_sizes:
                size = min(max_size, queue_sizes[index])
                yield from self.common_write("queue_size", size)
            _, _, _, total = ring_layout(size)
            buffer = self.kernel.alloc_dma(total, alignment=4096)
            vq = DriverVirtqueue(index, size, buffer, name=f"{self.name}.vq{index}")
            yield from self.common_write("queue_desc", vq.addresses.desc_table)
            yield from self.common_write("queue_driver", vq.addresses.avail_ring)
            yield from self.common_write("queue_device", vq.addresses.used_ring)
            entry = index + 1
            vector = self.kernel.irqc.allocate_vector()
            if queue_vectors and index in queue_vectors:
                vector = queue_vectors[index]
            yield from self.setup_msix_entry(entry, vector)
            yield from self.common_write("queue_msix_vector", entry)
            yield from self.common_write("queue_enable", 1)
            notify_off = yield from self.common_read("queue_notify_off")
            self.notify_addrs.append(
                notify_window.address + notify_off * notify_window.notify_off_multiplier
            )
            self.virtqueues.append(vq)
            self.queue_vectors_assigned.append(vector)

        yield from self.enable_msix()
        yield from self.common_write("device_status", status | STATUS_DRIVER_OK)

    def reset_runtime_state(self) -> None:
        """Forget the per-boot queue state ahead of a device reset +
        re-initialization (the config vector survives: entry 0 is simply
        reprogrammed with the same host vector)."""
        self.virtqueues.clear()
        self.notify_addrs.clear()
        self.queue_vectors_assigned.clear()
        self.msix_vectors_used = 0

    # -- runtime ------------------------------------------------------------------------------------

    def notify(self, queue_index: int) -> Generator[Any, Any, None]:
        """Kick a queue: the single posted I/O write of the VirtIO
        runtime path."""
        addr = self.notify_addrs[queue_index]
        yield self.kernel.mmio_write(addr, queue_index.to_bytes(2, "little"))

    def queue(self, index: int) -> DriverVirtqueue:
        return self.virtqueues[index]

    def queue_vector(self, index: int) -> int:
        """The MSI-X vector assigned to queue *index* at init."""
        return self.queue_vectors_assigned[index]

    # -- interrupt binding (Transport protocol) ------------------------------------
    #
    # PCI routes each queue's completions to its own host vector, so a
    # binding is a plain vector registration.

    def bind_queue_interrupt(self, index: int, handler: Any) -> None:
        self.kernel.irqc.register(self.queue_vectors_assigned[index], handler)

    def unbind_queue_interrupt(self, index: int) -> None:
        self.kernel.irqc.unregister(self.queue_vectors_assigned[index])

    def bind_config_interrupt(self, handler: Any) -> None:
        self.kernel.irqc.register(self.config_vector, handler)
