"""In-kernel driver models: the XDMA character-device reference driver
and the VirtIO front-ends (pci transport, net, console, blk)."""

from repro.drivers.virtio_blk import BlockIOError, VirtioBlkDriver
from repro.drivers.virtio_console import VirtioConsoleDriver
from repro.drivers.virtio_net import VirtioNetDriver
from repro.drivers.virtio_pci import VirtioPciTransport, VirtioProbeError
from repro.drivers.virtio_rng import VirtioRngDriver
from repro.drivers.xdma import XdmaCharDriver, XdmaProbeError

__all__ = [
    "BlockIOError",
    "VirtioBlkDriver",
    "VirtioConsoleDriver",
    "VirtioNetDriver",
    "VirtioPciTransport",
    "VirtioProbeError",
    "VirtioRngDriver",
    "XdmaCharDriver",
    "XdmaProbeError",
]
