"""virtio-rng front-end driver (hwrng backend).

Posts device-writable buffers on the requestq and returns the entropy
the device fills in -- the Linux ``virtio-rng.c`` flow reduced to its
synchronous core.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator

from repro.drivers.virtio_pci import VirtioPciTransport
from repro.host.kernel import HostKernel
from repro.mem.dma import DmaBuffer
from repro.sim.event import Event
from repro.virtio.constants import VIRTIO_F_VERSION_1
from repro.virtio.features import FeatureSet

if TYPE_CHECKING:  # pragma: no cover
    from repro.pcie.enumeration import DiscoveredFunction

REQUESTQ = 0
MAX_READ = 1024

DRIVER_SUPPORTED = FeatureSet.of(VIRTIO_F_VERSION_1)


class VirtioRngDriver:
    """Bound driver for one virtio-rng function."""

    def __init__(self, kernel: HostKernel, function: "DiscoveredFunction",
                 name: str = "hwrng") -> None:
        self.kernel = kernel
        self.transport = VirtioPciTransport(kernel, function, name=name)
        self.name = name
        self._buffer: DmaBuffer | None = None
        self._pending: Dict[int, Event] = {}
        self.bytes_read = 0

    def probe(self) -> Generator[Any, Any, None]:
        transport = self.transport
        yield from transport.discover()
        yield from transport.initialize(DRIVER_SUPPORTED)
        self.kernel.irqc.register(transport.queue_vector(REQUESTQ), self._interrupt)
        self._buffer = self.kernel.alloc_dma(MAX_READ)

    def _interrupt(self) -> Generator[Any, Any, None]:
        yield self.kernel.cpu("driver_irq_ack")
        vq = self.transport.queue(REQUESTQ)
        while True:
            elem = vq.get_used()
            if elem is None:
                break
            yield self.kernel.cpu("virtio_get_buf")
            done = self._pending.pop(elem.head, None)
            if done is not None:
                done.trigger(elem.written)

    def read_entropy(self, length: int) -> Generator[Any, Any, bytes]:
        """Blocking read of *length* bytes of device entropy."""
        if not 0 < length <= MAX_READ:
            raise ValueError(f"length must be in (0, {MAX_READ}], got {length}")
        kernel = self.kernel
        assert self._buffer is not None
        yield kernel.cpu("virtio_add_buf")
        vq = self.transport.queue(REQUESTQ)
        head = vq.add_buffer([], [(self._buffer.addr, length)])
        done = Event(name=f"{self.name}.entropy")
        self._pending[head] = done
        vq.publish()
        yield from self.transport.notify(REQUESTQ)
        written = yield from kernel.block_on(done)
        yield kernel.copy(written)
        self.bytes_read += written
        return self._buffer.read(0, written)
