"""virtio-mmio transport driver (front-end side).

The second VirtIO 1.2 bus binding, as a drop-in
:class:`~repro.virtio.transport.Transport` sibling of
:class:`~repro.drivers.virtio_pci.VirtioPciTransport`: no capability
walk (the register block sits at a fixed offset), no per-structure
windows (everything is one flat page), and -- the performance-relevant
difference -- *one* shared interrupt for all queues and config changes,
demultiplexed by an ``InterruptStatus`` read and retired by an
``InterruptACK`` write.  Where the PCI runtime RX path costs one MSI-X
dispatch, the MMIO path costs the same dispatch *plus* a non-posted
register read and a posted ack write per interrupt: the access-cost
asymmetry experiment E-V1's transport column measures.

The virtqueue traffic itself (descriptor chains, avail/used rings) is
identical between the transports by construction -- both drive the same
:class:`DriverVirtqueue` -- which the transport-equivalence property
test pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.host.kernel import HostKernel
from repro.pcie.config_space import CAP_ID_MSIX
from repro.pcie.enumeration import DiscoveredFunction
from repro.pcie.msi import MSI_ADDRESS_BASE, MSIX_ENTRY_SIZE
from repro.virtio.constants import (
    STATUS_ACKNOWLEDGE,
    STATUS_DRIVER,
    STATUS_DRIVER_OK,
    STATUS_FEATURES_OK,
    VIRTIO_ISR_CONFIG,
    VIRTIO_ISR_QUEUE,
    VIRTIO_PCI_VENDOR_ID,
)
from repro.drivers.virtio_pci import VirtioProbeError
from repro.virtio.features import FeatureSet, negotiate
from repro.virtio.mmio_transport import (
    MMIO_CONFIG,
    MMIO_DEVICE_FEATURES,
    MMIO_DEVICE_FEATURES_SEL,
    MMIO_DEVICE_ID,
    MMIO_DRIVER_FEATURES,
    MMIO_DRIVER_FEATURES_SEL,
    MMIO_INTERRUPT_ACK,
    MMIO_INTERRUPT_STATUS,
    MMIO_MAGIC_VALUE,
    MMIO_QUEUE_DESC_HIGH,
    MMIO_QUEUE_DESC_LOW,
    MMIO_QUEUE_DEVICE_HIGH,
    MMIO_QUEUE_DEVICE_LOW,
    MMIO_QUEUE_DRIVER_HIGH,
    MMIO_QUEUE_DRIVER_LOW,
    MMIO_QUEUE_NOTIFY,
    MMIO_QUEUE_NUM,
    MMIO_QUEUE_NUM_MAX,
    MMIO_QUEUE_READY,
    MMIO_QUEUE_SEL,
    MMIO_STATUS,
    MMIO_VERSION,
    CONFIG_IRQ_ENTRY,
    QUEUE_IRQ_ENTRY,
    VIRTIO_MMIO_MAGIC,
    VIRTIO_MMIO_VERSION,
)
from repro.virtio.controller.device import VIRTIO_MMIO_BAR_INDEX
from repro.virtio.virtqueue import DriverVirtqueue, ring_layout

#: Defensive bound on QueueSel probing (the device reports the end of
#: its queue list with QueueNumMax == 0).
MAX_PROBED_QUEUES = 64


@dataclass
class VirtioMmioTransport:
    """Bound transport state for one function's virtio-mmio window."""

    kernel: HostKernel
    function: DiscoveredFunction
    name: str = "virtio-mmio"
    base: int = 0
    msix_table_addr: int = 0
    msix_cap_offset: int = 0
    device_id: int = 0
    device_features: FeatureSet = field(default_factory=FeatureSet)
    accepted_features: FeatureSet = field(default_factory=FeatureSet)
    virtqueues: List[DriverVirtqueue] = field(default_factory=list)
    #: One host vector services the whole device (the shared line).
    host_vector: int = -1
    _isr_registered: bool = False
    _queue_handlers: Dict[int, Any] = field(default_factory=dict)
    _config_handler: Optional[Any] = None

    # -- register helpers -----------------------------------------------------------

    def _write(self, offset: int, value: int, size: int = 4) -> Generator[Any, Any, None]:
        yield self.kernel.mmio_write(self.base + offset, value.to_bytes(size, "little"))

    def _read(self, offset: int, size: int = 4) -> Generator[Any, Any, int]:
        data = yield from self.kernel.mmio_read(self.base + offset, size)
        return int.from_bytes(data, "little")

    # -- discovery -----------------------------------------------------------------

    def discover(self) -> Generator[Any, Any, None]:
        """Locate the MMIO window and verify the 4.2.2 header (magic,
        version, device id) -- the MMIO analogue of the capability walk,
        plus the MSI-X table the shared line is delivered through."""
        if self.function.vendor_id != VIRTIO_PCI_VENDOR_ID:
            raise VirtioProbeError(
                f"not a VirtIO device: vendor {self.function.vendor_id:#06x}"
            )
        window = self.function.bars.get(VIRTIO_MMIO_BAR_INDEX)
        if window is None:
            raise VirtioProbeError(
                f"no virtio-mmio window (BAR {VIRTIO_MMIO_BAR_INDEX} unimplemented; "
                f"build the device with mmio_window=True)"
            )
        self.base = window.address
        port = self.function.port
        for cap in self.function.capabilities:
            if cap.cap_id == CAP_ID_MSIX:
                raw = bytearray()
                for chunk in range(0, 12, 4):
                    raw += yield port.cfg_read(cap.offset + chunk, 4)
                table = int.from_bytes(raw[4:8], "little")
                table_bar = table & 0x7
                table_offset = table & ~0x7
                discovered_bar = self.function.bars.get(table_bar)
                if discovered_bar is None:
                    raise VirtioProbeError(f"MSI-X table in unassigned BAR {table_bar}")
                self.msix_table_addr = discovered_bar.address + table_offset
                self.msix_cap_offset = cap.offset
        if not self.msix_table_addr:
            raise VirtioProbeError("device lacks MSI-X")
        magic = yield from self._read(MMIO_MAGIC_VALUE)
        if magic != VIRTIO_MMIO_MAGIC:
            raise VirtioProbeError(f"bad virtio-mmio magic {magic:#010x}")
        version = yield from self._read(MMIO_VERSION)
        if version != VIRTIO_MMIO_VERSION:
            raise VirtioProbeError(f"unsupported virtio-mmio version {version}")
        self.device_id = yield from self._read(MMIO_DEVICE_ID)
        if self.device_id == 0:
            raise VirtioProbeError("virtio-mmio placeholder device (ID 0)")

    # -- MSI-X plumbing (the VMM/platform shim behind the one line) ------------------

    def _setup_msix_entry(self, entry: int, vector: int) -> Generator[Any, Any, None]:
        base = self.msix_table_addr + entry * MSIX_ENTRY_SIZE
        yield self.kernel.mmio_write(base, MSI_ADDRESS_BASE.to_bytes(8, "little"))
        yield self.kernel.mmio_write(base + 8, vector.to_bytes(4, "little"))
        yield self.kernel.mmio_write(base + 12, (0).to_bytes(4, "little"))

    def _enable_msix(self) -> Generator[Any, Any, None]:
        port = self.function.port
        ctrl_raw = yield port.cfg_read(self.msix_cap_offset + 2, 2)
        ctrl = int.from_bytes(ctrl_raw, "little") | 0x8000
        yield port.cfg_write(self.msix_cap_offset + 2, ctrl.to_bytes(2, "little"))

    # -- initialization -------------------------------------------------------------

    def initialize(self, driver_supported: FeatureSet) -> Generator[Any, Any, None]:
        """The 3.1.1 sequence over the 4.2.2 registers."""
        yield from self._write(MMIO_STATUS, 0)
        status = yield from self._read(MMIO_STATUS)
        if status != 0:
            raise VirtioProbeError(f"device did not reset (status={status:#x})")
        yield from self._write(MMIO_STATUS, STATUS_ACKNOWLEDGE)
        yield from self._write(MMIO_STATUS, STATUS_ACKNOWLEDGE | STATUS_DRIVER)

        words = []
        for select in (0, 1):
            yield from self._write(MMIO_DEVICE_FEATURES_SEL, select)
            word = yield from self._read(MMIO_DEVICE_FEATURES)
            words.append((select, word))
        self.device_features = FeatureSet.from_words(words)
        self.accepted_features = negotiate(self.device_features, driver_supported)
        for select in (0, 1):
            yield from self._write(MMIO_DRIVER_FEATURES_SEL, select)
            yield from self._write(MMIO_DRIVER_FEATURES, self.accepted_features.word(select))
        status = STATUS_ACKNOWLEDGE | STATUS_DRIVER | STATUS_FEATURES_OK
        yield from self._write(MMIO_STATUS, status)
        readback = yield from self._read(MMIO_STATUS)
        if not readback & STATUS_FEATURES_OK:
            raise VirtioProbeError("device rejected the negotiated features")

        # One host vector for the whole device: program both table
        # entries the device-side block routes through, then enable.
        # (Platform wiring for the shared line; reprogrammed verbatim
        # across re-initialization, like the PCI config vector.)
        if self.host_vector < 0:
            self.host_vector = self.kernel.irqc.allocate_vector()
        yield from self._setup_msix_entry(CONFIG_IRQ_ENTRY, self.host_vector)
        yield from self._setup_msix_entry(QUEUE_IRQ_ENTRY, self.host_vector)

        # Queue setup: probe QueueSel until QueueNumMax reads 0.
        for index in range(MAX_PROBED_QUEUES):
            yield from self._write(MMIO_QUEUE_SEL, index)
            max_size = yield from self._read(MMIO_QUEUE_NUM_MAX)
            if max_size == 0:
                break
            size = max_size
            yield from self._write(MMIO_QUEUE_NUM, size)
            _, _, _, total = ring_layout(size)
            buffer = self.kernel.alloc_dma(total, alignment=4096)
            vq = DriverVirtqueue(index, size, buffer, name=f"{self.name}.vq{index}")
            yield from self._write(MMIO_QUEUE_DESC_LOW, vq.addresses.desc_table & 0xFFFF_FFFF)
            yield from self._write(MMIO_QUEUE_DESC_HIGH, vq.addresses.desc_table >> 32)
            yield from self._write(MMIO_QUEUE_DRIVER_LOW, vq.addresses.avail_ring & 0xFFFF_FFFF)
            yield from self._write(MMIO_QUEUE_DRIVER_HIGH, vq.addresses.avail_ring >> 32)
            yield from self._write(MMIO_QUEUE_DEVICE_LOW, vq.addresses.used_ring & 0xFFFF_FFFF)
            yield from self._write(MMIO_QUEUE_DEVICE_HIGH, vq.addresses.used_ring >> 32)
            yield from self._write(MMIO_QUEUE_READY, 1)
            self.virtqueues.append(vq)

        yield from self._enable_msix()
        yield from self._write(MMIO_STATUS, status | STATUS_DRIVER_OK)
        if not self._isr_registered:
            self.kernel.irqc.register(self.host_vector, self._interrupt)
            self._isr_registered = True

    def reset_runtime_state(self) -> None:
        """Forget per-boot queue state ahead of re-initialization (the
        host vector and its shared ISR survive, like PCI's config
        vector: the line is platform wiring, not queue state)."""
        self.virtqueues.clear()
        self._queue_handlers.clear()

    # -- runtime ----------------------------------------------------------------------

    def notify(self, queue_index: int) -> Generator[Any, Any, None]:
        """Kick a queue: one posted write of the queue index into the
        shared QueueNotify doorbell."""
        yield self.kernel.mmio_write(
            self.base + MMIO_QUEUE_NOTIFY, queue_index.to_bytes(4, "little")
        )

    def queue(self, index: int) -> DriverVirtqueue:
        return self.virtqueues[index]

    def device_config_read(self, offset: int, length: int) -> Generator[Any, Any, bytes]:
        data = yield from self.kernel.mmio_read(self.base + MMIO_CONFIG + offset, length)
        return data

    def read_device_status(self) -> Generator[Any, Any, int]:
        status = yield from self._read(MMIO_STATUS)
        return status

    def isr_read(self) -> Generator[Any, Any, int]:
        """Read *and acknowledge* the interrupt status, matching the
        PCI ISR byte's read-to-clear contract callers rely on."""
        value = yield from self._read(MMIO_INTERRUPT_STATUS)
        if value:
            yield from self._write(MMIO_INTERRUPT_ACK, value)
        return value

    # -- the shared interrupt line -----------------------------------------------------

    def _interrupt(self) -> Generator[Any, Any, None]:
        """Demultiplex the one line: a non-posted InterruptStatus read,
        a posted ack, then every bound source with evidence of work.
        The extra register round trip per interrupt is virtio-mmio's
        intrinsic cost relative to per-queue MSI-X vectors."""
        status = yield from self._read(MMIO_INTERRUPT_STATUS)
        if not status:
            return  # spurious (already serviced by a racing ack)
        yield from self._write(MMIO_INTERRUPT_ACK, status)
        if status & VIRTIO_ISR_QUEUE:
            for index in sorted(self._queue_handlers):
                if index < len(self.virtqueues) and self.virtqueues[index].has_used():
                    yield from self._queue_handlers[index]()
        if status & VIRTIO_ISR_CONFIG and self._config_handler is not None:
            yield from self._config_handler()

    def bind_queue_interrupt(self, index: int, handler: Any) -> None:
        self._queue_handlers[index] = handler

    def unbind_queue_interrupt(self, index: int) -> None:
        self._queue_handlers.pop(index, None)

    def bind_config_interrupt(self, handler: Any) -> None:
        self._config_handler = handler
