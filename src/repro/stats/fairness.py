"""Fairness metrics for multi-tenant sweeps.

Jain's fairness index (Jain, Chiu, Hawe 1984) over per-tenant
allocations x_1..x_n:

    J = (sum x_i)^2 / (n * sum x_i^2)

J = 1 when every tenant gets the same share; J = 1/n when one tenant
gets everything.  It is scale-free (doubling every allocation leaves J
unchanged), which is what lets E-M1 compare fairness across load
points with different aggregate goodput.
"""

from __future__ import annotations

from typing import Sequence


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index of *values*.

    Degenerate inputs take the convention that makes verdict logic
    simple: an empty set or an all-zero set (nobody got anything --
    equally unfair to everyone) is perfectly fair, 1.0.  A single
    tenant is trivially fair, 1.0.
    """
    n = len(values)
    if n == 0:
        return 1.0
    total = float(sum(values))
    squares = float(sum(value * value for value in values))
    if squares == 0.0:
        return 1.0
    return (total * total) / (n * squares)
