"""Latency histograms (the distribution view of Fig. 3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.stats.percentile import as_array


@dataclass(frozen=True)
class Histogram:
    """Fixed-bin histogram over microsecond latencies."""

    edges_us: np.ndarray  # len = bins + 1
    counts: np.ndarray  # len = bins

    @classmethod
    def from_ps(
        cls,
        samples: Sequence[int] | np.ndarray,
        bins: int = 60,
        range_us: Tuple[float, float] | None = None,
    ) -> "Histogram":
        arr = as_array(samples).astype(np.float64) / 1e6
        if range_us is None:
            # Clip at p99.5 so the body is visible despite the tail.
            hi = float(np.percentile(arr, 99.5))
            lo = float(arr.min())
            if hi <= lo:
                hi = lo + 1.0
            range_us = (lo, hi)
        counts, edges = np.histogram(arr, bins=bins, range=range_us)
        return cls(edges_us=edges, counts=counts)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def density(self) -> np.ndarray:
        """Counts normalized to sum to 1 (empty histogram -> zeros)."""
        total = self.counts.sum()
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / total

    def render(self, width: int = 50, height_label: str = "") -> str:
        """ASCII rendering (the terminal stand-in for Fig. 3)."""
        lines = []
        peak = self.counts.max() if self.counts.size else 1
        peak = max(int(peak), 1)
        for i, count in enumerate(self.counts):
            bar = "#" * int(round(width * count / peak))
            lo = self.edges_us[i]
            hi = self.edges_us[i + 1]
            lines.append(f"{lo:8.1f}-{hi:8.1f} us |{bar:<{width}}| {count}")
        header = f"{height_label}\n" if height_label else ""
        return header + "\n".join(lines)
