"""Latency summaries: the numbers each figure/table consumes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.stats.percentile import TABLE1_PERCENTILES, as_array, percentiles_us


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of one latency series (all in microseconds,
    like the paper's figures)."""

    count: int
    mean_us: float
    std_us: float
    min_us: float
    median_us: float
    p95_us: float
    p99_us: float
    p999_us: float
    max_us: float

    @classmethod
    def from_ps(cls, samples: Sequence[int] | np.ndarray) -> "LatencySummary":
        arr = as_array(samples)
        tails = percentiles_us(arr, TABLE1_PERCENTILES)
        return cls(
            count=int(arr.size),
            mean_us=float(arr.mean()) / 1e6,
            std_us=float(arr.std(ddof=1)) / 1e6 if arr.size > 1 else 0.0,
            min_us=float(arr.min()) / 1e6,
            median_us=float(np.percentile(arr, 50.0)) / 1e6,
            p95_us=tails[95.0],
            p99_us=tails[99.0],
            p999_us=tails[99.9],
            max_us=float(arr.max()) / 1e6,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "std_us": self.std_us,
            "min_us": self.min_us,
            "median_us": self.median_us,
            "p95_us": self.p95_us,
            "p99_us": self.p99_us,
            "p999_us": self.p999_us,
            "max_us": self.max_us,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.count} mean={self.mean_us:.1f}us sd={self.std_us:.1f} "
            f"p95={self.p95_us:.1f} p99={self.p99_us:.1f} p99.9={self.p999_us:.1f}"
        )
