"""Percentile / tail-latency computation.

All latency series in the experiment layer are int64 picosecond arrays;
these helpers produce the microsecond values the paper reports
(Table I uses the 95th, 99th and 99.9th percentiles).

Percentiles use linear interpolation between order statistics (NumPy's
default), matching common latency-reporting tools.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

#: The tail points of Table I.
TABLE1_PERCENTILES = (95.0, 99.0, 99.9)


def as_array(samples: Sequence[int] | np.ndarray) -> np.ndarray:
    """Coerce to an int64 array, validating non-emptiness."""
    arr = np.asarray(samples, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"expected 1-D samples, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("empty sample set")
    return arr


def percentile_us(samples: Sequence[int] | np.ndarray, q: float) -> float:
    """The *q*-th percentile of picosecond samples, in microseconds."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    return float(np.percentile(as_array(samples), q)) / 1e6

def percentiles_us(
    samples: Sequence[int] | np.ndarray,
    points: Iterable[float] = TABLE1_PERCENTILES,
) -> Dict[float, float]:
    """Several percentiles at once (single sort)."""
    arr = as_array(samples)
    pts = list(points)
    values = np.percentile(arr, pts)
    return {p: float(v) / 1e6 for p, v in zip(pts, values)}


def tail_ratio(samples: Sequence[int] | np.ndarray, q: float = 99.0) -> float:
    """Tail amplification: P_q / median -- a scale-free variance
    indicator used by the claims checks."""
    arr = as_array(samples)
    median = float(np.percentile(arr, 50.0))
    if median == 0.0:
        raise ValueError("median is zero; tail ratio undefined")
    return float(np.percentile(arr, q)) / median
