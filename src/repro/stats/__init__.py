"""Vectorized latency statistics."""

from repro.stats.histogram import Histogram
from repro.stats.percentile import (
    TABLE1_PERCENTILES,
    as_array,
    percentile_us,
    percentiles_us,
    tail_ratio,
)
from repro.stats.summary import LatencySummary

__all__ = [
    "Histogram",
    "LatencySummary",
    "TABLE1_PERCENTILES",
    "as_array",
    "percentile_us",
    "percentiles_us",
    "tail_ratio",
]
