"""Admission control for overload-aware workload generation.

Four cooperating mechanisms, all deterministic (pure arithmetic on
simulator time -- no RNG draws, no events), so enabling them never
perturbs a run's random streams:

* :class:`TokenBucket` -- a classic rate limiter: tokens refill at a
  configured rate up to a burst ceiling; each admitted packet spends
  one.  Caps the rate at which the generator is allowed to *offer*
  work to the stack, turning excess offered load into counted
  ``rate_limited`` drops instead of queue growth.
* :class:`AdmissionController` -- bounds packets in flight end-to-end
  (the generator-level analogue of a connection window); arrivals over
  the window are ``admission_limit`` drops.
* :class:`RetryBudget` -- retries are paid from a budget earned as a
  fraction of successful requests (the SRE "retry budget" rule), so a
  failing system sees its retry traffic *shrink* instead of amplify.
* :class:`CircuitBreaker` -- after a run of consecutive failures the
  circuit opens and new work is refused (``circuit_open`` drops) for a
  cooldown period; the first packet after cooldown is the half-open
  probe that closes the circuit again on success.

:class:`OverloadConfig` bundles the knobs plus the per-hop queue
bounds; it is a frozen, picklable dataclass so it travels to pool
workers inside an exec-engine cell unchanged.  The all-``None``
default disables every mechanism, which keeps unconfigured runs
bit-identical to pre-overload behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.health.bounded import POLICIES, POLICY_DROP
from repro.sim.time import ns


@dataclass(frozen=True)
class OverloadConfig:
    """Overload-protection knobs for one generator run.

    Every field defaults to "off"; a default-constructed config is a
    no-op and leaves runs bit-identical to unprotected ones.
    """

    #: Max packets in flight end-to-end (None = unbounded).
    admission_limit: Optional[int] = None
    #: Token-bucket refill rate in packets/s (None = no rate limit).
    token_rate_pps: Optional[float] = None
    #: Token-bucket burst ceiling.
    token_burst: int = 32
    #: Full-queue policy for generator-level hops ("drop"/"block"/"reject").
    queue_policy: str = POLICY_DROP
    #: Retries earned per success (0 = no retries); a rejected send may
    #: retry while the budget is positive.
    retry_ratio: float = 0.0
    #: Hard cap on retries for a single packet.
    max_retries_per_packet: int = 3
    #: Consecutive failures that open the circuit (0 = breaker off).
    breaker_threshold: int = 0
    #: How long the circuit stays open before the half-open probe.
    breaker_cooldown_ns: float = 1_000_000.0
    #: Closed-loop receive timeout; a worker whose echo never arrives
    #: gives up after this long instead of stalling forever (None = wait
    #: forever, the pre-overload behaviour).
    recv_timeout_ns: Optional[float] = None
    # -- per-hop queue bounds (None = leave the hop as built) --
    #: Socket receive backlog, in datagrams (VirtIO path).
    socket_rx_limit: Optional[int] = None
    #: VirtIO transmit virtqueue depth limit (chains in flight).
    tx_depth_limit: Optional[int] = None
    #: Open-loop XDMA software job-queue capacity.
    xdma_queue_limit: Optional[int] = None
    #: XDMA driver pending-request window (reject-to-caller beyond it).
    xdma_max_pending: Optional[int] = None

    def __post_init__(self) -> None:
        if self.queue_policy not in POLICIES:
            raise ValueError(
                f"unknown queue policy {self.queue_policy!r} "
                f"(expected one of {POLICIES})"
            )
        if self.token_rate_pps is not None and self.token_rate_pps <= 0:
            raise ValueError(f"token rate must be positive, got {self.token_rate_pps}")
        if self.token_burst <= 0:
            raise ValueError(f"token burst must be positive, got {self.token_burst}")
        if not 0.0 <= self.retry_ratio <= 1.0:
            raise ValueError(f"retry ratio must be in [0, 1], got {self.retry_ratio}")
        for name in ("admission_limit", "socket_rx_limit", "tx_depth_limit",
                     "xdma_queue_limit", "xdma_max_pending"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None, got {value}")

    @property
    def active(self) -> bool:
        """Whether any mechanism is enabled at all."""
        return any(
            getattr(self, name) is not None
            for name in ("admission_limit", "token_rate_pps", "recv_timeout_ns",
                         "socket_rx_limit", "tx_depth_limit", "xdma_queue_limit",
                         "xdma_max_pending")
        ) or self.retry_ratio > 0.0 or self.breaker_threshold > 0


class TokenBucket:
    """Deterministic token-bucket rate limiter on simulator time."""

    def __init__(self, rate_pps: float, burst: int, now_ps: int = 0) -> None:
        if rate_pps <= 0:
            raise ValueError(f"rate must be positive, got {rate_pps}")
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self.rate_pps = rate_pps
        self.burst = burst
        self._tokens = float(burst)
        self._last_ps = now_ps
        self.admitted = 0
        self.throttled = 0

    def _refill(self, now_ps: int) -> None:
        if now_ps > self._last_ps:
            self._tokens = min(
                float(self.burst),
                self._tokens + (now_ps - self._last_ps) / 1e12 * self.rate_pps,
            )
            self._last_ps = now_ps

    def try_take(self, now_ps: int) -> bool:
        """Spend one token if available; counts the outcome."""
        self._refill(now_ps)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.admitted += 1
            return True
        self.throttled += 1
        return False


class AdmissionController:
    """Bound on packets in flight end-to-end."""

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ValueError(f"admission limit must be positive, got {limit}")
        self.limit = limit
        self.in_flight = 0
        self.admitted = 0
        self.rejected = 0

    def try_admit(self) -> bool:
        if self.in_flight >= self.limit:
            self.rejected += 1
            return False
        self.in_flight += 1
        self.admitted += 1
        return True

    def release(self) -> None:
        """One admitted packet reached a terminal state."""
        if self.in_flight > 0:
            self.in_flight -= 1


class RetryBudget:
    """Retry tokens earned as a fraction of successes.

    Start with a small grace allowance so cold-start failures may
    retry; after that, each success earns ``ratio`` tokens and each
    retry spends one -- bounding retry traffic to ``ratio`` times the
    success rate no matter how hard the system is failing.
    """

    def __init__(self, ratio: float, grace: int = 3) -> None:
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"retry ratio must be in [0, 1], got {ratio}")
        self.ratio = ratio
        self._tokens = float(grace)
        self.retries_granted = 0
        self.retries_denied = 0

    def record_success(self) -> None:
        self._tokens += self.ratio

    def try_retry(self) -> bool:
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.retries_granted += 1
            return True
        self.retries_denied += 1
        return False


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probing."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, threshold: int, cooldown_ns: float) -> None:
        if threshold <= 0:
            raise ValueError(f"breaker threshold must be positive, got {threshold}")
        if cooldown_ns <= 0:
            raise ValueError(f"breaker cooldown must be positive, got {cooldown_ns}")
        self.threshold = threshold
        self.cooldown_ps = ns(cooldown_ns)
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at_ps = 0
        self.opens = 0
        self.short_circuited = 0

    def allows(self, now_ps: int) -> bool:
        """Whether a new request may proceed right now."""
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN and now_ps - self._opened_at_ps >= self.cooldown_ps:
            self.state = self.HALF_OPEN
            return True  # the half-open probe
        if self.state == self.HALF_OPEN:
            return True
        self.short_circuited += 1
        return False

    def record_success(self) -> None:
        self.state = self.CLOSED
        self._consecutive_failures = 0

    def record_failure(self, now_ps: int) -> None:
        self._consecutive_failures += 1
        if self.state == self.HALF_OPEN or (
            self.state == self.CLOSED
            and self._consecutive_failures >= self.threshold
        ):
            self.state = self.OPEN
            self._opened_at_ps = now_ps
            self.opens += 1
