"""Workload engine: traffic generation and load-sweep experiments.

The paper (and :mod:`repro.core.latency`) measures ping-pong round
trips -- exactly one request in flight.  This package adds the *offered
load* axis the ping-pong layer cannot express:

* :mod:`repro.workload.arrivals` -- seeded arrival processes
  (deterministic rate, Poisson, bursty on-off MMPP),
* :mod:`repro.workload.sizes` -- payload-size distributions over the
  paper's 64 B - 1 KB operating points,
* :mod:`repro.workload.generator` -- an open-loop generator that
  injects at an offered rate regardless of completions, and a
  closed-loop generator with N outstanding requests (N=1 degenerates
  to the paper's ping-pong loop, a built-in consistency check),
* :mod:`repro.workload.metrics` -- per-run accounting: achieved
  throughput, in-flight occupancy time series, drop/backpressure
  counts, latency samples feeding the ``stats`` percentile machinery,
* :mod:`repro.workload.sweep` -- the offered-load sweep driver that
  locates the saturation knee for both driver stacks.
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    MmppArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.workload.generator import (
    ClosedLoopGenerator,
    OpenLoopGenerator,
    WorkloadError,
)
from repro.workload.metrics import RunMetrics, RunRecorder
from repro.workload.sizes import (
    EmpiricalMix,
    FixedSize,
    SizeDistribution,
    UniformSize,
    make_sizes,
)
from repro.workload.sweep import (
    ClosedSweepResult,
    LoadPoint,
    LoadSweepResult,
    estimate_base_rate,
    run_driver_closed_sweep,
    run_driver_load_sweep,
)

__all__ = [
    "ArrivalProcess",
    "ClosedLoopGenerator",
    "ClosedSweepResult",
    "DeterministicArrivals",
    "EmpiricalMix",
    "FixedSize",
    "LoadPoint",
    "LoadSweepResult",
    "MmppArrivals",
    "OpenLoopGenerator",
    "PoissonArrivals",
    "RunMetrics",
    "RunRecorder",
    "SizeDistribution",
    "UniformSize",
    "WorkloadError",
    "estimate_base_rate",
    "make_arrivals",
    "make_sizes",
    "run_driver_closed_sweep",
    "run_driver_load_sweep",
]
