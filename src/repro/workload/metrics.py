"""Per-run accounting for workload generator runs.

:class:`RunRecorder` is the live instrument a generator drives while
the simulation runs (injections, completions, drops, in-flight
transitions); :meth:`RunRecorder.finish` freezes it into a
:class:`RunMetrics`, the analysis-side container whose latency samples
feed the existing :mod:`repro.stats` percentile machinery.

Latency semantics differ by loop type, and the distinction matters:

* *open loop*: a sample is ``completion - intended arrival instant``,
  i.e. sojourn time including any software-queue wait -- measuring from
  the actual (possibly delayed) send would hide queueing delay behind
  the generator's own backpressure, the classic coordinated-omission
  mistake;
* *closed loop*: a sample is the application-observed round trip,
  exactly as the paper's ping-pong loop timestamps it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.sim.time import SimTime, to_us
from repro.stats.percentile import percentiles_us
from repro.stats.summary import LatencySummary

#: Percentile points the load-sweep tables report.
LOAD_PERCENTILES = (50.0, 95.0, 99.0)


@dataclass(frozen=True)
class RunMetrics:
    """Frozen outcome of one generator run at one operating point."""

    driver: str
    mode: str  # "open" or "closed"
    offered_pps: Optional[float]  # open loop only
    outstanding: Optional[int]  # closed loop only
    sent: int
    completed: int
    dropped: int
    backpressured: int
    duration_ps: SimTime
    latency_ps: np.ndarray
    occupancy_t_ps: np.ndarray
    occupancy_n: np.ndarray
    #: reason -> count for every drop folded into ``dropped``; empty
    #: only when no packet was lost.
    drop_reasons: Dict[str, int]

    @property
    def duration_us(self) -> float:
        return to_us(self.duration_ps)

    @property
    def achieved_pps(self) -> float:
        """Completion throughput over the measured span."""
        if self.duration_ps <= 0:
            return 0.0
        return self.completed / (self.duration_ps / 1e12)

    @property
    def offered_total(self) -> int:
        """Injection attempts including drops."""
        return self.sent + self.dropped

    @property
    def drop_fraction(self) -> float:
        total = self.offered_total
        return self.dropped / total if total else 0.0

    @property
    def peak_in_flight(self) -> int:
        if self.occupancy_n.size == 0:
            return 0
        return int(self.occupancy_n.max())

    @property
    def mean_in_flight(self) -> float:
        """Time-weighted mean queue/in-flight occupancy."""
        if self.occupancy_t_ps.size < 2:
            return float(self.occupancy_n[0]) if self.occupancy_n.size else 0.0
        spans = np.diff(self.occupancy_t_ps).astype(np.float64)
        total = spans.sum()
        if total <= 0:
            return float(self.occupancy_n[-1])
        return float(np.dot(self.occupancy_n[:-1].astype(np.float64), spans) / total)

    def latency_summary(self) -> LatencySummary:
        return LatencySummary.from_ps(self.latency_ps)

    def latency_percentiles_us(self) -> Dict[float, float]:
        return percentiles_us(self.latency_ps, LOAD_PERCENTILES)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary (no raw sample arrays)."""
        tails = self.latency_percentiles_us()
        return {
            "driver": self.driver,
            "mode": self.mode,
            "offered_pps": self.offered_pps,
            "outstanding": self.outstanding,
            "sent": self.sent,
            "completed": self.completed,
            "dropped": self.dropped,
            "drop_reasons": dict(sorted(self.drop_reasons.items())),
            "backpressured": self.backpressured,
            "duration_us": self.duration_us,
            "achieved_pps": self.achieved_pps,
            "drop_fraction": self.drop_fraction,
            "peak_in_flight": self.peak_in_flight,
            "mean_in_flight": self.mean_in_flight,
            "latency_us": {
                "mean": float(self.latency_ps.mean()) / 1e6 if self.latency_ps.size else None,
                "p50": tails[50.0] if self.latency_ps.size else None,
                "p95": tails[95.0] if self.latency_ps.size else None,
                "p99": tails[99.0] if self.latency_ps.size else None,
            },
        }


class RunRecorder:
    """Mutable accumulator the generators drive during a run."""

    def __init__(self, driver: str, mode: str) -> None:
        self.driver = driver
        self.mode = mode
        self.sent = 0
        self.completed = 0
        self.dropped = 0
        self.drop_reasons: Dict[str, int] = {}
        self.backpressured = 0
        self._in_flight = 0
        self._latency_ps: List[int] = []
        self._occ_t: List[SimTime] = []
        self._occ_n: List[int] = []
        self._first_send_ps: Optional[SimTime] = None
        self._last_event_ps: Optional[SimTime] = None

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def _occupancy(self, now_ps: SimTime) -> None:
        self._occ_t.append(now_ps)
        self._occ_n.append(self._in_flight)
        self._last_event_ps = now_ps

    def record_send(self, now_ps: SimTime) -> None:
        """One request entered the system (syscall issued / job queued)."""
        if self._first_send_ps is None:
            self._first_send_ps = now_ps
        self.sent += 1
        self._in_flight += 1
        self._occupancy(now_ps)

    def record_complete(self, now_ps: SimTime, latency_ps: SimTime) -> None:
        """One request finished; *latency_ps* per the loop's semantics."""
        if latency_ps < 0:
            raise ValueError(f"negative latency {latency_ps}")
        self.completed += 1
        self._in_flight -= 1
        self._latency_ps.append(latency_ps)
        self._occupancy(now_ps)

    def record_drop(self, now_ps: SimTime, reason: str = "queue_full") -> None:
        """An injection was refused, terminally, for *reason* (full
        ring, full software queue, admission reject, rate limit,
        exhausted retries, receive timeout, ...)."""
        self.dropped += 1
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1
        self._occupancy(now_ps)

    def record_backpressure(self) -> None:
        """The generator fell behind its own schedule (injection stalled)."""
        self.backpressured += 1

    def finish(
        self,
        offered_pps: Optional[float] = None,
        outstanding: Optional[int] = None,
        extra_drops: int = 0,
        extra_drop_reasons: Optional[Dict[str, int]] = None,
    ) -> RunMetrics:
        """Freeze into a :class:`RunMetrics`.

        ``extra_drops`` folds in losses counted outside the recorder
        (e.g. the UDP socket's SO_RCVBUF tail drops);
        ``extra_drop_reasons`` carries their per-reason breakdown.
        """
        duration = 0
        if self._first_send_ps is not None and self._last_event_ps is not None:
            duration = self._last_event_ps - self._first_send_ps
        reasons = dict(self.drop_reasons)
        for reason, count in (extra_drop_reasons or {}).items():
            if count:
                reasons[reason] = reasons.get(reason, 0) + count
        return RunMetrics(
            driver=self.driver,
            mode=self.mode,
            offered_pps=offered_pps,
            outstanding=outstanding,
            sent=self.sent,
            completed=self.completed,
            dropped=self.dropped + extra_drops,
            backpressured=self.backpressured,
            duration_ps=duration,
            latency_ps=np.asarray(self._latency_ps, dtype=np.int64),
            occupancy_t_ps=np.asarray(self._occ_t, dtype=np.int64),
            occupancy_n=np.asarray(self._occ_n, dtype=np.int64),
            drop_reasons=reasons,
        )
