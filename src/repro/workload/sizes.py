"""Payload-size distributions for the workload generators.

The paper sweeps fixed payloads (64 B .. 1 KB, one size per run); a
load test additionally wants mixed traffic.  Each distribution draws
UDP-payload byte counts from a caller-supplied seeded RNG stream.

Sizes are bounded below by :data:`MIN_PAYLOAD` (the generators stamp a
sequence number into the first bytes of every payload to match
completions back to injections) and above by :data:`MAX_PAYLOAD` (the
stack's MTU budget for an un-fragmented UDP datagram).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.calibration import PAPER_PAYLOAD_SIZES

#: Room for the generator's 4-byte sequence stamp.
MIN_PAYLOAD = 8
#: One MTU-sized frame: 1500 - IPv4 (20) - UDP (8).
MAX_PAYLOAD = 1472


def _check_size(size: int) -> int:
    if not MIN_PAYLOAD <= size <= MAX_PAYLOAD:
        raise ValueError(
            f"payload size {size} outside [{MIN_PAYLOAD}, {MAX_PAYLOAD}]"
        )
    return int(size)


class SizeDistribution:
    """Base class: a stream of payload sizes in bytes."""

    def sample(self, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorized draw of *n* sizes (int64 bytes)."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return np.array([self.sample(rng) for _ in range(n)], dtype=np.int64)

    @property
    def mean_bytes(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSize(SizeDistribution):
    """Every payload is exactly *size* bytes (the paper's per-run shape)."""

    size: int

    def __post_init__(self) -> None:
        _check_size(self.size)

    def sample(self, rng: np.random.Generator) -> int:
        return self.size

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return np.full(n, self.size, dtype=np.int64)

    @property
    def mean_bytes(self) -> float:
        return float(self.size)


@dataclass(frozen=True)
class UniformSize(SizeDistribution):
    """Uniform over ``[lo, hi]`` inclusive."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        _check_size(self.lo)
        _check_size(self.hi)
        if self.lo > self.hi:
            raise ValueError(f"lo {self.lo} > hi {self.hi}")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.lo, self.hi + 1))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return rng.integers(self.lo, self.hi + 1, size=n, dtype=np.int64)

    @property
    def mean_bytes(self) -> float:
        return (self.lo + self.hi) / 2.0


@dataclass(frozen=True)
class EmpiricalMix(SizeDistribution):
    """Weighted mix over discrete operating points.

    Defaults to a uniform mix over the paper's five payload sizes, so a
    mixed-traffic run exercises exactly the calibrated region.
    """

    sizes: Tuple[int, ...] = PAPER_PAYLOAD_SIZES
    weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("EmpiricalMix needs at least one size")
        for size in self.sizes:
            _check_size(size)
        if self.weights is not None:
            if len(self.weights) != len(self.sizes):
                raise ValueError(
                    f"{len(self.weights)} weights for {len(self.sizes)} sizes"
                )
            if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
                raise ValueError("weights must be non-negative with positive sum")

    def _probabilities(self) -> np.ndarray:
        if self.weights is None:
            return np.full(len(self.sizes), 1.0 / len(self.sizes))
        total = float(sum(self.weights))
        return np.asarray(self.weights, dtype=np.float64) / total

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.choice(np.asarray(self.sizes), p=self._probabilities()))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return rng.choice(
            np.asarray(self.sizes, dtype=np.int64), size=n, p=self._probabilities()
        )

    @property
    def mean_bytes(self) -> float:
        return float(np.dot(np.asarray(self.sizes), self._probabilities()))


def make_sizes(payloads: Sequence[int]) -> SizeDistribution:
    """The CLI mapping: one ``--payloads`` value is a fixed size, several
    become a uniform empirical mix over those points."""
    if not payloads:
        raise ValueError("need at least one payload size")
    if len(payloads) == 1:
        return FixedSize(payloads[0])
    return EmpiricalMix(tuple(payloads))
