"""Offered-load sweep driver: locate the saturation knee.

The sweep calibrates itself: a short closed-loop ``outstanding=1`` run
(the paper's ping-pong) measures the base round trip, whose inverse is
the one-in-flight service rate.  Offered-load points are then placed at
multiples of that base rate -- below it (latency flat at the ping-pong
floor), around it (queueing onset), and far above it (saturation, where
achieved throughput plateaus and the tail percentiles grow with the
queue) -- so the same relative sweep straddles the knee on both driver
stacks even though their capacities differ.

Every load point runs on a freshly booted testbed with the same seed:
points are independent experiments, and the whole sweep is
bit-reproducible for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.calibration import PAPER_PROFILE, CalibrationProfile
from repro.core.testbed import build_virtio_testbed, build_xdma_testbed
from repro.workload.arrivals import make_arrivals
from repro.workload.generator import ClosedLoopGenerator, OpenLoopGenerator
from repro.workload.metrics import RunMetrics
from repro.workload.sizes import FixedSize, SizeDistribution

#: Offered-load points as multiples of the measured base (1/RTT) rate.
DEFAULT_MULTIPLIERS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)

#: Achieved/offered ratio below which a load point counts as saturated.
KNEE_UTILIZATION = 0.9

#: Ping-pong round trips used to measure the base rate.
CALIBRATION_PACKETS = 120


def _builder(driver: str) -> Callable[..., object]:
    if driver == "virtio":
        return build_virtio_testbed
    if driver == "xdma":
        return build_xdma_testbed
    raise ValueError(f"unknown driver {driver!r} (expected 'virtio' or 'xdma')")


def estimate_base_rate(
    driver: str,
    seed: int = 0,
    packets: int = CALIBRATION_PACKETS,
    sizes: Optional[SizeDistribution] = None,
    profile: CalibrationProfile = PAPER_PROFILE,
) -> Tuple[float, float]:
    """Measure the ping-pong floor; returns ``(rtt_us, rate_pps)``.

    The rate is the closed-loop one-in-flight completion rate -- the
    natural unit for placing offered-load points.
    """
    testbed = _builder(driver)(seed=seed, profile=profile)
    generator = ClosedLoopGenerator(
        outstanding=1, sizes=sizes or FixedSize(64), packets=packets
    )
    metrics = testbed.run_workload(generator)
    rtt_us = float(metrics.latency_ps.mean()) / 1e6
    return rtt_us, 1e6 / rtt_us


@dataclass(frozen=True)
class LoadPoint:
    """One operating point of a sweep."""

    offered_pps: float
    metrics: RunMetrics


@dataclass
class LoadSweepResult:
    """One driver's full offered-load sweep."""

    driver: str
    seed: int
    arrival_kind: str
    base_rtt_us: float
    base_rate_pps: float
    points: List[LoadPoint]

    def knee_pps(self, utilization: float = KNEE_UTILIZATION) -> Optional[float]:
        """The lowest offered rate whose achieved throughput falls below
        ``utilization * offered`` -- None if the sweep never saturates."""
        for point in self.points:
            if point.metrics.achieved_pps < utilization * point.offered_pps:
                return point.offered_pps
        return None

    def capacity_pps(self) -> float:
        """Highest achieved throughput anywhere in the sweep."""
        return max(point.metrics.achieved_pps for point in self.points)

    def drop_reason_totals(self) -> Dict[str, int]:
        """Per-reason drop counts summed across all load points."""
        totals: Dict[str, int] = {}
        for point in self.points:
            for reason, count in point.metrics.drop_reasons.items():
                totals[reason] = totals.get(reason, 0) + count
        return dict(sorted(totals.items()))

    def throughput_table(self) -> str:
        header = (
            f"Throughput vs offered load ({self.driver}, {self.arrival_kind} "
            f"arrivals, base RTT {self.base_rtt_us:.1f} us)"
        )
        rows = [
            header,
            f"{'offered':>10} {'achieved':>10} {'util':>6} {'drops':>7} "
            f"{'backpr':>7} {'inflight':>9} {'peak':>5}   (kpps)",
        ]
        for point in self.points:
            m = point.metrics
            util = m.achieved_pps / point.offered_pps if point.offered_pps else 0.0
            reasons = " ".join(
                f"{reason}={count}"
                for reason, count in sorted(m.drop_reasons.items())
            )
            rows.append(
                f"{point.offered_pps / 1e3:>10.1f} {m.achieved_pps / 1e3:>10.1f} "
                f"{util:>6.2f} {m.dropped:>7} {m.backpressured:>7} "
                f"{m.mean_in_flight:>9.2f} {m.peak_in_flight:>5}"
                + (f"   [{reasons}]" if reasons else "")
            )
        knee = self.knee_pps()
        rows.append(
            f"  saturation knee: "
            + (f"~{knee / 1e3:.1f} kpps offered" if knee is not None
               else "not reached in this sweep")
            + f" (capacity {self.capacity_pps() / 1e3:.1f} kpps)"
        )
        totals = self.drop_reason_totals()
        if totals:
            rows.append(
                "  drops by reason: "
                + ", ".join(f"{reason}={count}" for reason, count in totals.items())
            )
        return "\n".join(rows)

    def latency_table(self) -> str:
        rows = [
            f"Latency vs offered load ({self.driver})",
            f"{'offered':>10} {'p50':>8} {'p95':>8} {'p99':>8} {'mean':>8}   "
            f"(kpps, us)",
        ]
        for point in self.points:
            m = point.metrics
            tails = m.latency_percentiles_us()
            mean_us = float(m.latency_ps.mean()) / 1e6 if m.latency_ps.size else 0.0
            rows.append(
                f"{point.offered_pps / 1e3:>10.1f} {tails[50.0]:>8.1f} "
                f"{tails[95.0]:>8.1f} {tails[99.0]:>8.1f} {mean_us:>8.1f}"
            )
        return "\n".join(rows)

    def render(self) -> str:
        return self.throughput_table() + "\n\n" + self.latency_table()

    def as_dict(self) -> Dict[str, object]:
        return {
            "driver": self.driver,
            "seed": self.seed,
            "arrival_kind": self.arrival_kind,
            "base_rtt_us": self.base_rtt_us,
            "base_rate_pps": self.base_rate_pps,
            "knee_pps": self.knee_pps(),
            "capacity_pps": self.capacity_pps(),
            "drop_reason_totals": self.drop_reason_totals(),
            "points": [
                {"offered_pps": point.offered_pps, **point.metrics.as_dict()}
                for point in self.points
            ],
        }


def run_driver_load_sweep(
    driver: str,
    seed: int = 0,
    packets: int = 400,
    rates: Optional[Sequence[float]] = None,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    arrival: str = "poisson",
    sizes: Optional[SizeDistribution] = None,
    profile: CalibrationProfile = PAPER_PROFILE,
) -> LoadSweepResult:
    """Open-loop offered-load sweep for one driver stack.

    ``rates`` (pps) overrides the auto-placed points; otherwise the
    points are ``multipliers`` times the measured base rate.
    """
    sizes = sizes or FixedSize(64)
    base_rtt_us, base_rate = estimate_base_rate(
        driver, seed=seed, sizes=sizes, profile=profile
    )
    offered = list(rates) if rates else [m * base_rate for m in multipliers]
    if not offered:
        raise ValueError("load sweep needs at least one offered-load point")

    points = []
    for rate in offered:
        testbed = _builder(driver)(seed=seed, profile=profile)
        generator = OpenLoopGenerator(
            arrivals=make_arrivals(arrival, rate), sizes=sizes, packets=packets
        )
        points.append(LoadPoint(offered_pps=rate, metrics=testbed.run_workload(generator)))
    return LoadSweepResult(
        driver=driver,
        seed=seed,
        arrival_kind=arrival,
        base_rtt_us=base_rtt_us,
        base_rate_pps=base_rate,
        points=points,
    )


@dataclass
class ClosedSweepResult:
    """One driver's closed-loop sweep over outstanding-request counts."""

    driver: str
    seed: int
    points: List[RunMetrics]

    def render(self) -> str:
        rows = [
            f"Closed-loop sweep ({self.driver})",
            f"{'N':>4} {'achieved':>10} {'p50':>8} {'p95':>8} {'p99':>8} "
            f"{'mean':>8}   (kpps, us)",
        ]
        for m in self.points:
            tails = m.latency_percentiles_us()
            mean_us = float(m.latency_ps.mean()) / 1e6 if m.latency_ps.size else 0.0
            rows.append(
                f"{m.outstanding:>4} {m.achieved_pps / 1e3:>10.1f} "
                f"{tails[50.0]:>8.1f} {tails[95.0]:>8.1f} {tails[99.0]:>8.1f} "
                f"{mean_us:>8.1f}"
            )
        return "\n".join(rows)

    def as_dict(self) -> Dict[str, object]:
        return {
            "driver": self.driver,
            "seed": self.seed,
            "points": [m.as_dict() for m in self.points],
        }


def run_driver_closed_sweep(
    driver: str,
    outstanding: Sequence[int] = (1, 2, 4, 8),
    seed: int = 0,
    packets: int = 400,
    sizes: Optional[SizeDistribution] = None,
    profile: CalibrationProfile = PAPER_PROFILE,
) -> ClosedSweepResult:
    """Closed-loop sweep over the number of outstanding requests."""
    if not outstanding:
        raise ValueError("closed sweep needs at least one outstanding count")
    sizes = sizes or FixedSize(64)
    points = []
    for n in outstanding:
        testbed = _builder(driver)(seed=seed, profile=profile)
        generator = ClosedLoopGenerator(outstanding=n, sizes=sizes, packets=packets)
        points.append(testbed.run_workload(generator))
    return ClosedSweepResult(driver=driver, seed=seed, points=points)
