"""Open- and closed-loop traffic generators.

Two loop disciplines, the load-testing classics:

* :class:`OpenLoopGenerator` injects at the arrival process's offered
  rate *regardless of completions* -- the device cannot slow the
  source down, so queue buildup, drops, and saturation become visible.
  Injections that find no transmit room are tail-dropped (the qdisc /
  full-software-queue analogue) and counted; an injector running
  behind its own schedule counts backpressure events.  Latency samples
  measure completion minus the *intended* arrival instant, avoiding
  coordinated omission.

* :class:`ClosedLoopGenerator` keeps exactly N requests outstanding:
  N worker loops, each send-wait-receive.  With ``outstanding=1`` the
  worker body replicates the paper's ping-pong measurement loop
  statement for statement (timestamp syscalls, echo, ``app_work``
  think time), so the workload engine degenerates to
  :func:`repro.core.latency.run_latency_sweep` -- the built-in
  consistency check the calibration tests pin down.

Both generators run on either testbed: the VirtIO path drives UDP
sockets through the full network stack; the XDMA path drives
``write()``/``read()`` pairs on the character device (with ``poll()``
when the profile enables the C2H interrupt), dispatched to a small
pool of service threads fed from a bounded software queue.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Dict, Generator, List, Tuple

import numpy as np

from repro.core.calibration import FPGA_IP, TEST_DST_PORT, xdma_transfer_size
from repro.host.chardev import sys_poll, sys_read, sys_write
from repro.sim.event import Event
from repro.sim.time import NS, SimTime
from repro.workload.arrivals import ArrivalProcess
from repro.workload.metrics import RunMetrics, RunRecorder
from repro.workload.sizes import SizeDistribution

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.testbed import VirtioTestbed, XdmaTestbed

#: UDP source port of the open-loop generator socket.
OPEN_LOOP_PORT = 48000
#: First UDP source port of the closed-loop worker sockets.
CLOSED_LOOP_PORT_BASE = 48100

#: Named simulator RNG streams (independent of every model stream, so
#: attaching a workload never perturbs the calibrated noise draws).
ARRIVAL_STREAM = "workload.arrivals"
SIZE_STREAM = "workload.sizes"


class WorkloadError(RuntimeError):
    """Generator misconfiguration or broken run invariants."""


def _stamp(sequence: int, size: int) -> bytes:
    """A *size*-byte payload carrying its sequence number in the first
    four bytes (how completions are matched back to injections)."""
    if size < 4:
        raise WorkloadError(f"payload of {size}B cannot carry a sequence stamp")
    head = sequence.to_bytes(4, "little")
    body = bytes(((sequence + i) & 0xFF) for i in range(size - 4))
    return head + body


def _sequence_of(payload: bytes) -> int:
    return int.from_bytes(payload[:4], "little")


def _split_counts(total: int, workers: int) -> List[int]:
    """Distribute *total* requests across *workers* loops."""
    base, extra = divmod(total, workers)
    return [base + (1 if i < extra else 0) for i in range(workers)]


class OpenLoopGenerator:
    """Inject *packets* requests at the arrival process's offered rate.

    Parameters
    ----------
    arrivals:
        The offered-rate arrival process.
    sizes:
        Payload-size distribution (UDP payload bytes; the XDMA path
        converts to wire-matched transfer sizes, Section IV-B).
    packets:
        Total injection attempts.
    queue_limit:
        XDMA only: capacity of the software job queue in front of the
        service threads; arrivals beyond it are tail-dropped.
    service_threads:
        XDMA only: concurrent ``write()``/``read()`` worker threads.
    """

    mode = "open"

    def __init__(
        self,
        arrivals: ArrivalProcess,
        sizes: SizeDistribution,
        packets: int,
        queue_limit: int = 128,
        service_threads: int = 2,
    ) -> None:
        if packets <= 0:
            raise WorkloadError(f"packets must be positive, got {packets}")
        if queue_limit <= 0:
            raise WorkloadError(f"queue_limit must be positive, got {queue_limit}")
        if service_threads <= 0:
            raise WorkloadError(f"service_threads must be positive, got {service_threads}")
        self.arrivals = arrivals
        self.sizes = sizes
        self.packets = packets
        self.queue_limit = queue_limit
        self.service_threads = service_threads

    def run(self, testbed: "VirtioTestbed | XdmaTestbed") -> RunMetrics:
        """Drive *testbed* to completion and return the run metrics."""
        from repro.core.testbed import VirtioTestbed, XdmaTestbed

        if isinstance(testbed, VirtioTestbed):
            return self._run_virtio(testbed)
        if isinstance(testbed, XdmaTestbed):
            return self._run_xdma(testbed)
        raise TypeError(f"unknown testbed type {type(testbed).__name__}")

    def _draw_schedule(self, testbed) -> Tuple[np.ndarray, np.ndarray]:
        """Pre-draw gaps and sizes from the named simulator streams, so
        the schedule is fixed before any model event interleaves."""
        gaps = self.arrivals.intervals(testbed.sim.rng(ARRIVAL_STREAM), self.packets)
        sizes = self.sizes.sample_many(testbed.sim.rng(SIZE_STREAM), self.packets)
        return gaps, sizes

    # -- VirtIO ----------------------------------------------------------------

    def _run_virtio(self, testbed: "VirtioTestbed") -> RunMetrics:
        sim = testbed.sim
        recorder = RunRecorder("virtio", self.mode)
        gaps, sizes = self._draw_schedule(testbed)
        socket = testbed.open_socket(OPEN_LOOP_PORT)
        deadlines: Dict[int, SimTime] = {}  # seq -> intended arrival instant

        def injector() -> Generator[Any, Any, None]:
            next_t = sim.now
            for seq in range(self.packets):
                next_t += int(gaps[seq])
                if sim.now < next_t:
                    yield next_t - sim.now
                else:
                    # Fell behind the offered schedule (injector CPU is
                    # the bottleneck at this rate): inject immediately.
                    recorder.record_backpressure()
                if not testbed.tx_has_room():
                    # Transmit ring full: the qdisc analogue tail-drops.
                    recorder.record_drop(sim.now)
                    continue
                deadlines[seq] = next_t
                recorder.record_send(sim.now)
                yield from socket.sendto(
                    _stamp(seq, int(sizes[seq])), FPGA_IP, TEST_DST_PORT
                )

        def collector() -> Generator[Any, Any, None]:
            while True:
                data, _source = yield from socket.recvfrom()
                arrival = deadlines.pop(_sequence_of(data), None)
                if arrival is None:
                    raise WorkloadError("echo completion for unknown sequence")
                recorder.record_complete(sim.now, sim.now - arrival)

        sim.spawn(collector(), name="workload-rx")
        done = sim.spawn(injector(), name="workload-tx")
        sim.run_until_triggered(done)
        sim.run()  # drain in-flight echoes
        socket.close()
        return recorder.finish(
            offered_pps=self.arrivals.rate_pps, extra_drops=socket.rx_dropped
        )

    # -- XDMA ------------------------------------------------------------------

    def _run_xdma(self, testbed: "XdmaTestbed") -> RunMetrics:
        sim = testbed.sim
        kernel = testbed.kernel
        driver = testbed.driver
        use_poll = testbed.profile.xdma_c2h_interrupt
        recorder = RunRecorder("xdma", self.mode)
        gaps, sizes = self._draw_schedule(testbed)
        jobs: Deque[Tuple[int, SimTime]] = deque()  # (transfer bytes, arrival)
        idle: List[Event] = []
        state = {"dispatched": False}

        def dispatcher() -> Generator[Any, Any, None]:
            next_t = sim.now
            for seq in range(self.packets):
                next_t += int(gaps[seq])
                if sim.now < next_t:
                    yield next_t - sim.now
                else:
                    recorder.record_backpressure()
                if len(jobs) >= self.queue_limit:
                    recorder.record_drop(sim.now)
                    continue
                jobs.append((xdma_transfer_size(int(sizes[seq])), next_t))
                recorder.record_send(sim.now)
                if idle:
                    idle.pop().trigger(None)
            state["dispatched"] = True
            for event in list(idle):
                event.trigger(None)
            idle.clear()

        def service() -> Generator[Any, Any, None]:
            while True:
                if jobs:
                    transfer, arrival = jobs.popleft()
                    payload = bytes(transfer)
                    written = yield from sys_write(kernel, driver, payload)
                    if written != transfer:
                        raise WorkloadError(f"short write: {written} of {transfer}")
                    if use_poll:
                        yield from sys_poll(kernel, driver)
                    data = yield from sys_read(kernel, driver, transfer)
                    if len(data) != transfer:
                        raise WorkloadError(f"short read: {len(data)} of {transfer}")
                    recorder.record_complete(sim.now, sim.now - arrival)
                elif state["dispatched"]:
                    return
                else:
                    event = sim.event("workload-idle")
                    idle.append(event)
                    yield event

        workers = [
            sim.spawn(service(), name=f"workload-svc{i}")
            for i in range(self.service_threads)
        ]
        done = sim.spawn(dispatcher(), name="workload-dispatch")
        sim.run_until_triggered(done)
        for worker in workers:
            sim.run_until_triggered(worker)
        sim.run()
        return recorder.finish(offered_pps=self.arrivals.rate_pps)


class ClosedLoopGenerator:
    """Keep exactly *outstanding* requests in flight until *packets*
    round trips complete."""

    mode = "closed"

    def __init__(
        self, outstanding: int, sizes: SizeDistribution, packets: int
    ) -> None:
        if outstanding <= 0:
            raise WorkloadError(f"outstanding must be positive, got {outstanding}")
        if packets < outstanding:
            raise WorkloadError(
                f"need packets >= outstanding, got {packets} < {outstanding}"
            )
        self.outstanding = outstanding
        self.sizes = sizes
        self.packets = packets

    def run(self, testbed: "VirtioTestbed | XdmaTestbed") -> RunMetrics:
        from repro.core.testbed import VirtioTestbed, XdmaTestbed

        if isinstance(testbed, VirtioTestbed):
            return self._run_virtio(testbed)
        if isinstance(testbed, XdmaTestbed):
            return self._run_xdma(testbed)
        raise TypeError(f"unknown testbed type {type(testbed).__name__}")

    def _draw_sizes(self, testbed) -> np.ndarray:
        return self.sizes.sample_many(testbed.sim.rng(SIZE_STREAM), self.packets)

    # -- VirtIO ----------------------------------------------------------------

    def _run_virtio(self, testbed: "VirtioTestbed") -> RunMetrics:
        sim = testbed.sim
        kernel = testbed.kernel
        recorder = RunRecorder("virtio", self.mode)
        sizes = self._draw_sizes(testbed)
        counts = _split_counts(self.packets, self.outstanding)

        # One socket per worker: the echo swaps ports, so each worker's
        # responses demux back to its own receive queue.
        sockets = [
            testbed.open_socket(CLOSED_LOOP_PORT_BASE + i)
            for i in range(self.outstanding)
        ]

        def worker(socket, offset: int, count: int) -> Generator[Any, Any, None]:
            # Statement-for-statement the paper's measurement loop
            # (latency.py _virtio_app): this is what makes outstanding=1
            # reproduce the ping-pong sweep.
            for k in range(count):
                seq = offset + k
                payload = _stamp(seq, int(sizes[seq]))
                recorder.record_send(sim.now)
                yield kernel.clock.call_cost()
                t0_ns = kernel.gettime_ns()
                yield from socket.sendto(payload, FPGA_IP, TEST_DST_PORT)
                data, _source = yield from socket.recvfrom()
                yield kernel.clock.call_cost()
                t1_ns = kernel.gettime_ns()
                if len(data) != len(payload):
                    raise WorkloadError(
                        f"echo size mismatch: sent {len(payload)}B, got {len(data)}B"
                    )
                recorder.record_complete(sim.now, (t1_ns - t0_ns) * NS)
                yield kernel.cpu("app_work")

        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        processes = [
            sim.spawn(worker(sockets[i], int(offsets[i]), counts[i]),
                      name=f"workload-cl{i}")
            for i in range(self.outstanding)
        ]
        for process in processes:
            sim.run_until_triggered(process)
        sim.run()
        for socket in sockets:
            socket.close()
        return recorder.finish(outstanding=self.outstanding)

    # -- XDMA ------------------------------------------------------------------

    def _run_xdma(self, testbed: "XdmaTestbed") -> RunMetrics:
        sim = testbed.sim
        kernel = testbed.kernel
        driver = testbed.driver
        use_poll = testbed.profile.xdma_c2h_interrupt
        recorder = RunRecorder("xdma", self.mode)
        sizes = self._draw_sizes(testbed)
        counts = _split_counts(self.packets, self.outstanding)

        def worker(offset: int, count: int) -> Generator[Any, Any, None]:
            # Statement-for-statement latency.py's _xdma_app.
            for k in range(count):
                seq = offset + k
                transfer = xdma_transfer_size(int(sizes[seq]))
                payload = _stamp(seq, transfer)
                recorder.record_send(sim.now)
                yield kernel.clock.call_cost()
                t0_ns = kernel.gettime_ns()
                written = yield from sys_write(kernel, driver, payload)
                if written != transfer:
                    raise WorkloadError(f"short write: {written} of {transfer}")
                if use_poll:
                    yield from sys_poll(kernel, driver)
                data = yield from sys_read(kernel, driver, transfer)
                yield kernel.clock.call_cost()
                t1_ns = kernel.gettime_ns()
                if len(data) != transfer:
                    raise WorkloadError(f"short read: {len(data)} of {transfer}")
                recorder.record_complete(sim.now, (t1_ns - t0_ns) * NS)
                yield kernel.cpu("app_work")

        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        processes = [
            sim.spawn(worker(int(offsets[i]), counts[i]), name=f"workload-cl{i}")
            for i in range(self.outstanding)
        ]
        for process in processes:
            sim.run_until_triggered(process)
        sim.run()
        return recorder.finish(outstanding=self.outstanding)
