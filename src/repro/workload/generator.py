"""Open- and closed-loop traffic generators.

Two loop disciplines, the load-testing classics:

* :class:`OpenLoopGenerator` injects at the arrival process's offered
  rate *regardless of completions* -- the device cannot slow the
  source down, so queue buildup, drops, and saturation become visible.
  Injections that find no transmit room are tail-dropped (the qdisc /
  full-software-queue analogue) and counted; an injector running
  behind its own schedule counts backpressure events.  Latency samples
  measure completion minus the *intended* arrival instant, avoiding
  coordinated omission.

* :class:`ClosedLoopGenerator` keeps exactly N requests outstanding:
  N worker loops, each send-wait-receive.  With ``outstanding=1`` the
  worker body replicates the paper's ping-pong measurement loop
  statement for statement (timestamp syscalls, echo, ``app_work``
  think time), so the workload engine degenerates to
  :func:`repro.core.latency.run_latency_sweep` -- the built-in
  consistency check the calibration tests pin down.

Both generators run on either testbed: the VirtIO path drives UDP
sockets through the full network stack; the XDMA path drives
``write()``/``read()`` pairs on the character device (with ``poll()``
when the profile enables the C2H interrupt), dispatched to a small
pool of service threads fed from a bounded software queue.

**Overload awareness.**  Passing an
:class:`~repro.workload.admission.OverloadConfig` arms admission
control (in-flight window), a token-bucket rate limiter, a retry
budget, and a circuit breaker in front of the loops; every refused or
abandoned packet is terminally recorded with a reason instead of
silently vanishing or stalling a worker forever.  A
:class:`~repro.health.ConservationMonitor` may ride along to assert
the exactly-once ledger (admitted = delivered + dropped-with-reason).
Both hooks are pure bookkeeping on the default path: a ``None`` config
and ``None`` monitor leave runs bit-identical to pre-overload
behaviour (no extra yields, no RNG draws).

Full-queue policy semantics at generator-level hops: ``drop`` counts
and moves on; ``block`` waits in bounded 1 us polls and converts an
expired wait into a ``block_timeout`` drop; ``reject`` surfaces at the
driver layer (:class:`~repro.drivers.xdma.XdmaBusyError`) where the
generator is the caller, so it too ends in a counted drop after the
retry budget says no.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.core.calibration import FPGA_IP, TEST_DST_PORT, xdma_transfer_size
from repro.drivers.xdma import XdmaBusyError, XdmaTransferError
from repro.health.bounded import POLICY_BLOCK, BoundedQueue
from repro.health.monitor import ConservationMonitor
from repro.host.chardev import sys_poll, sys_read, sys_write
from repro.sim.event import Event
from repro.sim.time import NS, SimTime, ns
from repro.workload.admission import (
    AdmissionController,
    CircuitBreaker,
    OverloadConfig,
    RetryBudget,
    TokenBucket,
)
from repro.workload.arrivals import ArrivalProcess
from repro.workload.metrics import RunMetrics, RunRecorder
from repro.workload.sizes import SizeDistribution

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.testbed import VirtioTestbed, XdmaTestbed

#: UDP source port of the open-loop generator socket.
OPEN_LOOP_PORT = 48000
#: First UDP source port of the closed-loop worker sockets.
CLOSED_LOOP_PORT_BASE = 48100

#: Named simulator RNG streams (independent of every model stream, so
#: attaching a workload never perturbs the calibrated noise draws).
ARRIVAL_STREAM = "workload.arrivals"
SIZE_STREAM = "workload.sizes"

#: Block-policy hops poll for room at this interval...
BLOCK_RETRY_PS = ns(1_000.0)  # 1 us
#: ...for at most this many polls before the wait becomes a drop.
BLOCK_MAX_POLLS = 64
#: Back-off before re-submitting after a driver busy-reject.
BUSY_RETRY_PS = ns(5_000.0)  # 5 us

#: Drop reasons that count as *system* failures for the circuit
#: breaker (generator-side refusals -- rate limiting, admission, the
#: open circuit itself -- do not re-trip the breaker).
_BREAKER_FAILURES = frozenset(
    {"txq_full", "queue_full", "block_timeout", "driver_busy",
     "retries_exhausted", "recv_timeout"}
)


class WorkloadError(RuntimeError):
    """Generator misconfiguration or broken run invariants."""


def _stamp(sequence: int, size: int) -> bytes:
    """A *size*-byte payload carrying its sequence number in the first
    four bytes (how completions are matched back to injections)."""
    if size < 4:
        raise WorkloadError(f"payload of {size}B cannot carry a sequence stamp")
    head = sequence.to_bytes(4, "little")
    body = bytes(((sequence + i) & 0xFF) for i in range(size - 4))
    return head + body


def _sequence_of(payload: bytes) -> int:
    return int.from_bytes(payload[:4], "little")


def _split_counts(total: int, workers: int) -> List[int]:
    """Distribute *total* requests across *workers* loops."""
    base, extra = divmod(total, workers)
    return [base + (1 if i < extra else 0) for i in range(workers)]


def _build_controls(
    overload: Optional[OverloadConfig], now_ps: SimTime
) -> Tuple[Optional[TokenBucket], Optional[AdmissionController],
           Optional[CircuitBreaker], Optional[RetryBudget]]:
    """Instantiate the armed subset of overload mechanisms."""
    if overload is None:
        return None, None, None, None
    bucket = (
        TokenBucket(overload.token_rate_pps, overload.token_burst, now_ps)
        if overload.token_rate_pps is not None else None
    )
    admission = (
        AdmissionController(overload.admission_limit)
        if overload.admission_limit is not None else None
    )
    breaker = (
        CircuitBreaker(overload.breaker_threshold, overload.breaker_cooldown_ns)
        if overload.breaker_threshold > 0 else None
    )
    budget = RetryBudget(overload.retry_ratio) if overload.retry_ratio > 0 else None
    return bucket, admission, breaker, budget


def _drop(
    recorder: RunRecorder,
    monitor: Optional[ConservationMonitor],
    breaker: Optional[CircuitBreaker],
    now_ps: SimTime,
    seq: int,
    reason: str,
) -> None:
    """Terminally drop packet *seq* for *reason*, everywhere at once."""
    recorder.record_drop(now_ps, reason)
    if monitor is not None:
        monitor.drop(seq, reason)
    if breaker is not None and reason in _BREAKER_FAILURES:
        breaker.record_failure(now_ps)


def _harvest_virtio_hops(testbed: "VirtioTestbed", sockets,
                         monitor: Optional[ConservationMonitor]) -> None:
    """Feed the stack's hop-level drop counters to the monitor so the
    end-of-run reconciliation can attribute leftover in-flight packets
    (e.g. echoes tail-dropped at the socket backlog)."""
    if monitor is None:
        return
    monitor.note_hop_drops(
        "socket_rx", sum(socket.rx_dropped for socket in sockets)
    )
    netdev = testbed.driver.netdev
    if netdev is not None:
        for reason, count in netdev.tx_dropped.items():
            monitor.note_hop_drops(f"netdev_tx:{reason}", count)
    monitor.note_hop_drops("virtqueue_depth", testbed.driver.tx_depth_rejects())


class OpenLoopGenerator:
    """Inject *packets* requests at the arrival process's offered rate.

    Parameters
    ----------
    arrivals:
        The offered-rate arrival process.
    sizes:
        Payload-size distribution (UDP payload bytes; the XDMA path
        converts to wire-matched transfer sizes, Section IV-B).
    packets:
        Total injection attempts.
    queue_limit:
        XDMA only: capacity of the software job queue in front of the
        service threads; arrivals beyond it are tail-dropped.
    service_threads:
        XDMA only: concurrent ``write()``/``read()`` worker threads.
    overload:
        Optional overload-protection config (admission window, token
        bucket, circuit breaker, retry budget, queue policy).
    monitor:
        Optional conservation ledger driven alongside the recorder.
    """

    mode = "open"

    def __init__(
        self,
        arrivals: ArrivalProcess,
        sizes: SizeDistribution,
        packets: int,
        queue_limit: int = 128,
        service_threads: int = 2,
        overload: Optional[OverloadConfig] = None,
        monitor: Optional[ConservationMonitor] = None,
    ) -> None:
        if packets <= 0:
            raise WorkloadError(f"packets must be positive, got {packets}")
        if queue_limit <= 0:
            raise WorkloadError(f"queue_limit must be positive, got {queue_limit}")
        if service_threads <= 0:
            raise WorkloadError(f"service_threads must be positive, got {service_threads}")
        self.arrivals = arrivals
        self.sizes = sizes
        self.packets = packets
        self.queue_limit = queue_limit
        self.service_threads = service_threads
        self.overload = overload
        self.monitor = monitor

    def run(self, testbed: "VirtioTestbed | XdmaTestbed") -> RunMetrics:
        """Drive *testbed* to completion and return the run metrics."""
        from repro.core.testbed import VirtioTestbed, XdmaTestbed

        if isinstance(testbed, VirtioTestbed):
            return self._run_virtio(testbed)
        if isinstance(testbed, XdmaTestbed):
            return self._run_xdma(testbed)
        raise TypeError(f"unknown testbed type {type(testbed).__name__}")

    def _draw_schedule(self, testbed) -> Tuple[np.ndarray, np.ndarray]:
        """Pre-draw gaps and sizes from the named simulator streams, so
        the schedule is fixed before any model event interleaves."""
        gaps = self.arrivals.intervals(testbed.sim.rng(ARRIVAL_STREAM), self.packets)
        sizes = self.sizes.sample_many(testbed.sim.rng(SIZE_STREAM), self.packets)
        return gaps, sizes

    # -- VirtIO ----------------------------------------------------------------

    def _run_virtio(self, testbed: "VirtioTestbed") -> RunMetrics:
        sim = testbed.sim
        recorder = RunRecorder("virtio", self.mode)
        monitor = self.monitor
        bucket, admission, breaker, _budget = _build_controls(self.overload, sim.now)
        block = self.overload is not None and self.overload.queue_policy == POLICY_BLOCK
        gaps, sizes = self._draw_schedule(testbed)
        socket = testbed.open_socket(OPEN_LOOP_PORT)
        deadlines: Dict[int, SimTime] = {}  # seq -> intended arrival instant

        def injector() -> Generator[Any, Any, None]:
            next_t = sim.now
            for seq in range(self.packets):
                next_t += int(gaps[seq])
                if sim.now < next_t:
                    yield next_t - sim.now
                else:
                    # Fell behind the offered schedule (injector CPU is
                    # the bottleneck at this rate): inject immediately.
                    recorder.record_backpressure()
                if breaker is not None and not breaker.allows(sim.now):
                    _drop(recorder, monitor, breaker, sim.now, seq, "circuit_open")
                    continue
                if bucket is not None and not bucket.try_take(sim.now):
                    _drop(recorder, monitor, breaker, sim.now, seq, "rate_limited")
                    continue
                if admission is not None and not admission.try_admit():
                    _drop(recorder, monitor, breaker, sim.now, seq, "admission_limit")
                    continue
                if not testbed.tx_has_room():
                    if block:
                        polls = 0
                        while not testbed.tx_has_room() and polls < BLOCK_MAX_POLLS:
                            recorder.record_backpressure()
                            polls += 1
                            yield BLOCK_RETRY_PS
                    if not testbed.tx_has_room():
                        # Transmit ring full: the qdisc analogue tail-drops
                        # (or the bounded block wait expired).
                        if admission is not None:
                            admission.release()
                        reason = "block_timeout" if block else "txq_full"
                        _drop(recorder, monitor, breaker, sim.now, seq, reason)
                        continue
                deadlines[seq] = next_t
                recorder.record_send(sim.now)
                if monitor is not None:
                    monitor.admit(seq)
                yield from socket.sendto(
                    _stamp(seq, int(sizes[seq])), FPGA_IP, TEST_DST_PORT
                )

        def collector() -> Generator[Any, Any, None]:
            while True:
                data, _source = yield from socket.recvfrom()
                seq = _sequence_of(data)
                arrival = deadlines.pop(seq, None)
                if arrival is None:
                    raise WorkloadError("echo completion for unknown sequence")
                recorder.record_complete(sim.now, sim.now - arrival)
                if monitor is not None:
                    monitor.deliver(seq)
                if admission is not None:
                    admission.release()
                if breaker is not None:
                    breaker.record_success()

        sim.spawn(collector(), name="workload-rx")
        done = sim.spawn(injector(), name="workload-tx")
        sim.run_until_triggered(done)
        sim.run()  # drain in-flight echoes
        _harvest_virtio_hops(testbed, [socket], monitor)
        socket.close()
        return recorder.finish(
            offered_pps=self.arrivals.rate_pps,
            extra_drops=socket.rx_dropped,
            extra_drop_reasons=socket.rx_drop_reasons,
        )

    # -- XDMA ------------------------------------------------------------------

    def _run_xdma(self, testbed: "XdmaTestbed") -> RunMetrics:
        sim = testbed.sim
        kernel = testbed.kernel
        driver = testbed.driver
        use_poll = testbed.profile.xdma_c2h_interrupt
        recorder = RunRecorder("xdma", self.mode)
        monitor = self.monitor
        overload = self.overload
        bucket, admission, breaker, budget = _build_controls(overload, sim.now)
        block = overload is not None and overload.queue_policy == POLICY_BLOCK
        max_retries = overload.max_retries_per_packet if overload is not None else 0
        queue_limit = self.queue_limit
        if overload is not None and overload.xdma_queue_limit is not None:
            queue_limit = overload.xdma_queue_limit
        gaps, sizes = self._draw_schedule(testbed)
        # (seq, transfer bytes, intended arrival); counting stays with
        # the recorder -- the queue object only enforces the bound.
        jobs = BoundedQueue(capacity=queue_limit, name="xdma-jobs",
                            drop_reason="queue_full")
        idle: List[Event] = []
        state = {"dispatched": False}

        def dispatcher() -> Generator[Any, Any, None]:
            next_t = sim.now
            for seq in range(self.packets):
                next_t += int(gaps[seq])
                if sim.now < next_t:
                    yield next_t - sim.now
                else:
                    recorder.record_backpressure()
                if breaker is not None and not breaker.allows(sim.now):
                    _drop(recorder, monitor, breaker, sim.now, seq, "circuit_open")
                    continue
                if bucket is not None and not bucket.try_take(sim.now):
                    _drop(recorder, monitor, breaker, sim.now, seq, "rate_limited")
                    continue
                if admission is not None and not admission.try_admit():
                    _drop(recorder, monitor, breaker, sim.now, seq, "admission_limit")
                    continue
                if not jobs.has_room():
                    if block:
                        polls = 0
                        while not jobs.has_room() and polls < BLOCK_MAX_POLLS:
                            recorder.record_backpressure()
                            polls += 1
                            yield BLOCK_RETRY_PS
                    if not jobs.has_room():
                        if admission is not None:
                            admission.release()
                        reason = "block_timeout" if block else "queue_full"
                        _drop(recorder, monitor, breaker, sim.now, seq, reason)
                        continue
                jobs.try_push((seq, xdma_transfer_size(int(sizes[seq])), next_t))
                recorder.record_send(sim.now)
                if monitor is not None:
                    monitor.admit(seq)
                if idle:
                    idle.pop().trigger(None)
            state["dispatched"] = True
            for event in list(idle):
                event.trigger(None)
            idle.clear()

        def service() -> Generator[Any, Any, None]:
            while True:
                if jobs:
                    seq, transfer, arrival = jobs.popleft()
                    payload = bytes(transfer)
                    attempts = 0
                    while True:
                        try:
                            written = yield from sys_write(kernel, driver, payload)
                            if written != transfer:
                                raise WorkloadError(
                                    f"short write: {written} of {transfer}"
                                )
                            if use_poll:
                                yield from sys_poll(kernel, driver)
                            data = yield from sys_read(kernel, driver, transfer)
                            if len(data) != transfer:
                                raise WorkloadError(
                                    f"short read: {len(data)} of {transfer}"
                                )
                        except XdmaBusyError:
                            # Reject-to-caller from the driver's bounded
                            # window: retry from the budget, else drop.
                            if (budget is not None and attempts < max_retries
                                    and budget.try_retry()):
                                attempts += 1
                                yield BUSY_RETRY_PS
                                continue
                            _drop(recorder, monitor, breaker, sim.now, seq,
                                  "driver_busy")
                            break
                        except XdmaTransferError:
                            # The driver's own retries ran out: terminal.
                            _drop(recorder, monitor, breaker, sim.now, seq,
                                  "retries_exhausted")
                            break
                        recorder.record_complete(sim.now, sim.now - arrival)
                        if monitor is not None:
                            monitor.deliver(seq)
                        if admission is not None:
                            admission.release()
                        if breaker is not None:
                            breaker.record_success()
                        if budget is not None:
                            budget.record_success()
                        break
                elif state["dispatched"]:
                    return
                else:
                    event = sim.event("workload-idle")
                    idle.append(event)
                    yield event

        workers = [
            sim.spawn(service(), name=f"workload-svc{i}")
            for i in range(self.service_threads)
        ]
        done = sim.spawn(dispatcher(), name="workload-dispatch")
        sim.run_until_triggered(done)
        for worker in workers:
            sim.run_until_triggered(worker)
        sim.run()
        if monitor is not None:
            monitor.note_hop_drops("xdma_busy_rejects", driver.busy_rejects)
        return recorder.finish(offered_pps=self.arrivals.rate_pps)


class ClosedLoopGenerator:
    """Keep exactly *outstanding* requests in flight until *packets*
    round trips complete.

    With an :class:`OverloadConfig` carrying ``recv_timeout_ns``, a
    worker whose echo never arrives records a ``recv_timeout`` drop
    (optionally retrying from the retry budget) and moves on instead
    of stalling the loop forever."""

    mode = "closed"

    def __init__(
        self,
        outstanding: int,
        sizes: SizeDistribution,
        packets: int,
        overload: Optional[OverloadConfig] = None,
        monitor: Optional[ConservationMonitor] = None,
    ) -> None:
        if outstanding <= 0:
            raise WorkloadError(f"outstanding must be positive, got {outstanding}")
        if packets < outstanding:
            raise WorkloadError(
                f"need packets >= outstanding, got {packets} < {outstanding}"
            )
        self.outstanding = outstanding
        self.sizes = sizes
        self.packets = packets
        self.overload = overload
        self.monitor = monitor

    def run(self, testbed: "VirtioTestbed | XdmaTestbed") -> RunMetrics:
        from repro.core.testbed import VirtioTestbed, XdmaTestbed

        if isinstance(testbed, VirtioTestbed):
            return self._run_virtio(testbed)
        if isinstance(testbed, XdmaTestbed):
            return self._run_xdma(testbed)
        raise TypeError(f"unknown testbed type {type(testbed).__name__}")

    def _draw_sizes(self, testbed) -> np.ndarray:
        return self.sizes.sample_many(testbed.sim.rng(SIZE_STREAM), self.packets)

    # -- VirtIO ----------------------------------------------------------------

    def _run_virtio(self, testbed: "VirtioTestbed") -> RunMetrics:
        sim = testbed.sim
        kernel = testbed.kernel
        recorder = RunRecorder("virtio", self.mode)
        monitor = self.monitor
        overload = self.overload
        _bucket, _admission, breaker, budget = _build_controls(overload, sim.now)
        timeout_ps: Optional[int] = None
        max_retries = 0
        if overload is not None:
            if overload.recv_timeout_ns is not None:
                timeout_ps = ns(overload.recv_timeout_ns)
            max_retries = overload.max_retries_per_packet
        sizes = self._draw_sizes(testbed)
        counts = _split_counts(self.packets, self.outstanding)

        # One socket per worker: the echo swaps ports, so each worker's
        # responses demux back to its own receive queue.
        sockets = [
            testbed.open_socket(CLOSED_LOOP_PORT_BASE + i)
            for i in range(self.outstanding)
        ]

        def worker(socket, offset: int, count: int) -> Generator[Any, Any, None]:
            # Statement-for-statement the paper's measurement loop
            # (latency.py _virtio_app): this is what makes outstanding=1
            # reproduce the ping-pong sweep.  The timeout/retry arms add
            # no statements to the default (overload=None) path.
            for k in range(count):
                seq = offset + k
                payload = _stamp(seq, int(sizes[seq]))
                if breaker is not None and not breaker.allows(sim.now):
                    _drop(recorder, monitor, breaker, sim.now, seq, "circuit_open")
                    continue
                recorder.record_send(sim.now)
                if monitor is not None:
                    monitor.admit(seq)
                attempts = 0
                while True:
                    yield kernel.clock.call_cost()
                    t0_ns = kernel.gettime_ns()
                    yield from socket.sendto(payload, FPGA_IP, TEST_DST_PORT)
                    if timeout_ps is None:
                        data, _source = yield from socket.recvfrom()
                    else:
                        data = None
                        while True:
                            result = yield from socket.recvfrom(timeout_ps)
                            if result is None:
                                break  # timed out with nothing for us
                            received, _source = result
                            if _sequence_of(received) == seq:
                                data = received
                                break
                            # A late echo of an earlier timed-out send:
                            # already accounted as a drop, discard it.
                        if data is None:
                            if (budget is not None and attempts < max_retries
                                    and budget.try_retry()):
                                attempts += 1
                                continue
                            _drop(recorder, monitor, breaker, sim.now, seq,
                                  "recv_timeout")
                            break
                    yield kernel.clock.call_cost()
                    t1_ns = kernel.gettime_ns()
                    if len(data) != len(payload):
                        raise WorkloadError(
                            f"echo size mismatch: sent {len(payload)}B, got {len(data)}B"
                        )
                    recorder.record_complete(sim.now, (t1_ns - t0_ns) * NS)
                    if monitor is not None:
                        monitor.deliver(seq)
                    if breaker is not None:
                        breaker.record_success()
                    if budget is not None:
                        budget.record_success()
                    yield kernel.cpu("app_work")
                    break

        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        processes = [
            sim.spawn(worker(sockets[i], int(offsets[i]), counts[i]),
                      name=f"workload-cl{i}")
            for i in range(self.outstanding)
        ]
        for process in processes:
            sim.run_until_triggered(process)
        sim.run()
        _harvest_virtio_hops(testbed, sockets, monitor)
        extra = sum(socket.rx_dropped for socket in sockets)
        reasons: Dict[str, int] = {}
        for socket in sockets:
            for reason, count in socket.rx_drop_reasons.items():
                reasons[reason] = reasons.get(reason, 0) + count
            socket.close()
        return recorder.finish(
            outstanding=self.outstanding, extra_drops=extra,
            extra_drop_reasons=reasons,
        )

    # -- XDMA ------------------------------------------------------------------

    def _run_xdma(self, testbed: "XdmaTestbed") -> RunMetrics:
        sim = testbed.sim
        kernel = testbed.kernel
        driver = testbed.driver
        use_poll = testbed.profile.xdma_c2h_interrupt
        recorder = RunRecorder("xdma", self.mode)
        monitor = self.monitor
        overload = self.overload
        _bucket, _admission, breaker, budget = _build_controls(overload, sim.now)
        max_retries = overload.max_retries_per_packet if overload is not None else 0
        sizes = self._draw_sizes(testbed)
        counts = _split_counts(self.packets, self.outstanding)

        def worker(offset: int, count: int) -> Generator[Any, Any, None]:
            # Statement-for-statement latency.py's _xdma_app on the
            # default path; driver rejections end in counted drops.
            for k in range(count):
                seq = offset + k
                transfer = xdma_transfer_size(int(sizes[seq]))
                payload = _stamp(seq, transfer)
                if breaker is not None and not breaker.allows(sim.now):
                    _drop(recorder, monitor, breaker, sim.now, seq, "circuit_open")
                    continue
                recorder.record_send(sim.now)
                if monitor is not None:
                    monitor.admit(seq)
                attempts = 0
                while True:
                    yield kernel.clock.call_cost()
                    t0_ns = kernel.gettime_ns()
                    try:
                        written = yield from sys_write(kernel, driver, payload)
                        if written != transfer:
                            raise WorkloadError(f"short write: {written} of {transfer}")
                        if use_poll:
                            yield from sys_poll(kernel, driver)
                        data = yield from sys_read(kernel, driver, transfer)
                    except XdmaBusyError:
                        if (budget is not None and attempts < max_retries
                                and budget.try_retry()):
                            attempts += 1
                            yield BUSY_RETRY_PS
                            continue
                        _drop(recorder, monitor, breaker, sim.now, seq, "driver_busy")
                        break
                    except XdmaTransferError:
                        _drop(recorder, monitor, breaker, sim.now, seq,
                              "retries_exhausted")
                        break
                    yield kernel.clock.call_cost()
                    t1_ns = kernel.gettime_ns()
                    if len(data) != transfer:
                        raise WorkloadError(f"short read: {len(data)} of {transfer}")
                    recorder.record_complete(sim.now, (t1_ns - t0_ns) * NS)
                    if monitor is not None:
                        monitor.deliver(seq)
                    if breaker is not None:
                        breaker.record_success()
                    if budget is not None:
                        budget.record_success()
                    yield kernel.cpu("app_work")
                    break

        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        processes = [
            sim.spawn(worker(int(offsets[i]), counts[i]), name=f"workload-cl{i}")
            for i in range(self.outstanding)
        ]
        for process in processes:
            sim.run_until_triggered(process)
        sim.run()
        if monitor is not None:
            monitor.note_hop_drops("xdma_busy_rejects", driver.busy_rejects)
        return recorder.finish(outstanding=self.outstanding)
