"""Arrival processes for the workload generators.

Each process turns an offered rate (packets per second) into a stream
of inter-arrival gaps in integer picoseconds.  All randomness is drawn
from a caller-supplied :class:`numpy.random.Generator` -- generators
pass a named stream from :meth:`repro.sim.kernel.Simulator.rng`, so
arrival times are bit-reproducible for a given simulator seed and
independent of every other noise source in the model.

Three shapes cover the classic traffic regimes:

* :class:`DeterministicArrivals` -- constant spacing (a paced
  hardware generator, the D/./1 reference case),
* :class:`PoissonArrivals` -- exponential gaps (memoryless aggregate
  of many independent users, the M/./1 case),
* :class:`MmppArrivals` -- a two-state on-off Markov-modulated Poisson
  process: exponential dwell in a bursting state (elevated rate) and a
  silent state, preserving the requested long-run mean rate.  This is
  the bursty regime where tail latency diverges from the mean first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.time import S


def _check_rate(rate_pps: float) -> None:
    if not rate_pps > 0:
        raise ValueError(f"rate_pps must be positive, got {rate_pps}")


@dataclass(frozen=True)
class ArrivalProcess:
    """Base class: an offered-rate arrival stream.

    ``rate_pps`` is the long-run mean injection rate in packets per
    second; :meth:`intervals` materializes *n* inter-arrival gaps.
    """

    rate_pps: float

    def __post_init__(self) -> None:
        _check_rate(self.rate_pps)

    @property
    def mean_interval_ps(self) -> float:
        """Long-run mean gap between arrivals, in picoseconds."""
        return S / self.rate_pps

    def intervals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """*n* inter-arrival gaps as int64 picoseconds (each >= 1)."""
        raise NotImplementedError

    def arrival_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Absolute arrival offsets (cumulative gaps) for *n* packets."""
        return np.cumsum(self.intervals(rng, n))


def _finalize(gaps_ps: np.ndarray) -> np.ndarray:
    """Round to integer picoseconds, keeping every gap strictly positive
    so same-instant arrivals cannot reorder the event queue."""
    return np.maximum(np.rint(gaps_ps).astype(np.int64), 1)


@dataclass(frozen=True)
class DeterministicArrivals(ArrivalProcess):
    """Constant-rate (paced) injection: every gap is exactly 1/rate."""

    def intervals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return _finalize(np.full(n, self.mean_interval_ps))


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Poisson injection: i.i.d. exponential gaps with mean 1/rate."""

    def intervals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return _finalize(rng.exponential(self.mean_interval_ps, size=n))


@dataclass(frozen=True)
class MmppArrivals(ArrivalProcess):
    """Two-state on-off MMPP: Poisson bursts separated by silences.

    Parameters
    ----------
    rate_pps:
        Long-run mean rate.  During a burst the instantaneous rate is
        ``rate_pps / on_fraction``; the silent state emits nothing, so
        the time-weighted mean equals ``rate_pps``.
    on_fraction:
        Expected fraction of time spent bursting (state dwell times are
        exponential with means ``on_fraction * cycle_s`` and
        ``(1 - on_fraction) * cycle_s``).
    cycle_s:
        Expected on+off cycle length in seconds; sets how many bursts a
        run of a given span sees.
    """

    on_fraction: float = 0.25
    cycle_s: float = 1e-3

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.on_fraction < 1.0:
            raise ValueError(f"on_fraction must be in (0, 1), got {self.on_fraction}")
        if not self.cycle_s > 0:
            raise ValueError(f"cycle_s must be positive, got {self.cycle_s}")

    @property
    def burst_rate_pps(self) -> float:
        return self.rate_pps / self.on_fraction

    def intervals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        mean_on_ps = self.on_fraction * self.cycle_s * S
        mean_off_ps = (1.0 - self.on_fraction) * self.cycle_s * S
        burst_gap_ps = S / self.burst_rate_pps

        gaps = np.empty(n, dtype=np.float64)
        dwell = rng.exponential(mean_on_ps)  # start in the ON state
        silent = False
        for i in range(n):
            gap = 0.0
            while True:
                if silent:
                    # Silence emits nothing: its whole dwell is gap time.
                    gap += dwell
                    silent = False
                    dwell = rng.exponential(mean_on_ps)
                    continue
                candidate = rng.exponential(burst_gap_ps)
                if candidate <= dwell:
                    dwell -= candidate
                    gap += candidate
                    break
                # Burst ends before the next arrival: spend the rest of
                # the dwell, then enter the silent state.
                gap += dwell
                silent = True
                dwell = rng.exponential(mean_off_ps)
            gaps[i] = gap
        return _finalize(gaps)


#: CLI names for the arrival shapes.
ARRIVAL_KINDS = ("deterministic", "poisson", "bursty")


def make_arrivals(kind: str, rate_pps: float) -> ArrivalProcess:
    """Factory keyed by the CLI's ``--distribution`` names."""
    if kind == "deterministic":
        return DeterministicArrivals(rate_pps)
    if kind == "poisson":
        return PoissonArrivals(rate_pps)
    if kind == "bursty":
        return MmppArrivals(rate_pps)
    raise ValueError(f"unknown arrival kind {kind!r} (expected one of {ARRIVAL_KINDS})")
